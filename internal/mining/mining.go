// Package mining selects the structure features the fragment-based index
// is built on (PIS paper §4 step 1). Features are label-free skeletons;
// two selection criteria from the literature the paper cites are provided:
//
//   - frequent + discriminative structures in the spirit of gIndex
//     (Yan, Yu, Han, SIGMOD'04): mine frequent skeletons up to a maximum
//     size, then keep a structure only when it is substantially more
//     selective than its already-kept substructures;
//   - path features in the spirit of GraphGrep (Shasha, Wang, Giugno,
//     PODS'02): all frequent simple paths up to a maximum length.
//
// Mining is enumerate-and-count: every connected edge-subgraph up to
// MaxEdges of every (sampled) graph is canonicalized and counted once per
// graph. For the fragment sizes PIS indexes (≤ 6 edges) on sparse
// molecule-like graphs this is exact and fast enough, and it avoids any
// approximation in support counting.
package mining

import (
	"fmt"
	"math"
	"sort"

	"pis/internal/canon"
	"pis/internal/graph"
)

// Feature is one selected structure: a label-free skeleton identified by
// its minimum DFS code.
type Feature struct {
	Key     string       // canon code key of the skeleton
	Code    canon.Code   // minimum DFS code
	Graph   *graph.Graph // canonical skeleton (vertex k = DFS id k)
	Edges   int          // number of edges
	Support int          // graphs in the mined sample containing it
}

// Options configures mining.
type Options struct {
	// MaxEdges bounds feature size; the paper indexes fragments of 4-6
	// edges (Fig. 12). Must be >= 1.
	MaxEdges int
	// MinEdges drops tiny features; single edges have no pruning power on
	// carbon-dominated data (paper Example 4) but are legal. Default 1.
	MinEdges int
	// MinSupportFraction keeps a structure only when it appears in at
	// least this fraction of the sampled graphs. Default 0.01.
	MinSupportFraction float64
	// SampleSize mines on the first SampleSize graphs only (0 = all).
	// gIndex-style feature sets are stable under sampling; index postings
	// are always built over the full database afterwards.
	SampleSize int
	// Discriminative enables the gIndex-style filter with ratio Gamma:
	// a structure f is kept only when support(subfeature)/support(f) >=
	// Gamma for its most selective already-kept subfeature. 0 disables.
	Gamma float64
	// PathsOnly restricts features to simple paths (GraphGrep flavor).
	PathsOnly bool
	// MaxFeatures caps the result, keeping the largest, most selective
	// structures (0 = unlimited).
	MaxFeatures int
	// UseGSpan mines by pattern growth (gSpan) instead of
	// enumerate-and-count. Both produce identical feature sets; gSpan
	// scales better with MaxEdges on large samples.
	UseGSpan bool
}

// normalize fills defaults and validates.
func (o Options) normalize(dbLen int) (Options, error) {
	if o.MaxEdges < 1 {
		return o, fmt.Errorf("mining: MaxEdges must be >= 1, got %d", o.MaxEdges)
	}
	if o.MinEdges < 1 {
		o.MinEdges = 1
	}
	if o.MinEdges > o.MaxEdges {
		return o, fmt.Errorf("mining: MinEdges %d > MaxEdges %d", o.MinEdges, o.MaxEdges)
	}
	if o.MinSupportFraction <= 0 {
		o.MinSupportFraction = 0.01
	}
	if o.SampleSize <= 0 || o.SampleSize > dbLen {
		o.SampleSize = dbLen
	}
	return o, nil
}

// Mine selects features from db according to opts. Features are returned
// sorted by (edges desc, support asc, key) so the most selective, largest
// structures come first.
func Mine(db []*graph.Graph, opts Options) ([]Feature, error) {
	opts, err := opts.normalize(len(db))
	if err != nil {
		return nil, err
	}
	sample := db[:opts.SampleSize]
	minSupport := int(math.Ceil(opts.MinSupportFraction * float64(len(sample))))
	if minSupport < 1 {
		minSupport = 1
	}

	if opts.UseGSpan {
		var feats []Feature
		for _, f := range GSpan(sample, GSpanOptions{
			MinSupport: minSupport,
			MaxEdges:   opts.MaxEdges,
			Skeleton:   true,
		}) {
			if f.Edges < opts.MinEdges {
				continue
			}
			if opts.PathsOnly && !isPath(f.Graph) {
				continue
			}
			feats = append(feats, f)
		}
		return postprocess(feats, opts), nil
	}

	type acc struct {
		code    canon.Code
		support int
		edges   int
	}
	counts := map[string]*acc{}
	perGraph := map[string]bool{}
	memo := canon.NewMemo() // fragment shapes recur across the whole sample
	for _, g := range sample {
		clearMap(perGraph)
		skel := g.Skeleton()
		graph.EnumerateConnectedSubgraphs(skel, opts.MaxEdges, func(edges []int32) bool {
			if len(edges) < opts.MinEdges {
				return true
			}
			frag := graph.Fragment{Host: skel, Edges: edges}
			sub, _, _ := frag.Extract()
			code, _ := memo.MinCodeUnlabeled(sub)
			key := code.Key()
			if perGraph[key] {
				return true
			}
			perGraph[key] = true
			a := counts[key]
			if a == nil {
				a = &acc{code: code, edges: len(edges)}
				counts[key] = a
			}
			a.support++
			return true
		})
	}

	var feats []Feature
	for key, a := range counts {
		if a.support < minSupport {
			continue
		}
		f := Feature{Key: key, Code: a.code, Graph: a.code.Graph(), Edges: a.edges, Support: a.support}
		if opts.PathsOnly && !isPath(f.Graph) {
			continue
		}
		feats = append(feats, f)
	}
	return postprocess(feats, opts), nil
}

// postprocess applies the shared ordering, discriminative filter and cap.
func postprocess(feats []Feature, opts Options) []Feature {
	sort.Slice(feats, func(i, j int) bool {
		if feats[i].Edges != feats[j].Edges {
			return feats[i].Edges > feats[j].Edges
		}
		if feats[i].Support != feats[j].Support {
			return feats[i].Support < feats[j].Support
		}
		return feats[i].Key < feats[j].Key
	})
	if opts.Gamma > 0 {
		feats = discriminative(feats, opts.Gamma)
	}
	if opts.MaxFeatures > 0 && len(feats) > opts.MaxFeatures {
		feats = feats[:opts.MaxFeatures]
	}
	return feats
}

// discriminative keeps a feature only when it is Gamma times more
// selective than its most selective kept subfeature, processing small
// structures first so subfeatures are decided before superfeatures.
// Minimum-size features are always kept (they have no indexed subfeature).
func discriminative(feats []Feature, gamma float64) []Feature {
	bySize := append([]Feature(nil), feats...)
	sort.Slice(bySize, func(i, j int) bool { return bySize[i].Edges < bySize[j].Edges })
	kept := map[string]Feature{}
	memo := canon.NewMemo()
	var out []Feature
	for _, f := range bySize {
		minSub := -1
		graph.EnumerateConnectedSubgraphs(f.Graph, f.Edges-1, func(edges []int32) bool {
			if len(edges) != f.Edges-1 {
				return true
			}
			frag := graph.Fragment{Host: f.Graph, Edges: edges}
			sub, _, _ := frag.Extract()
			code, _ := memo.MinCodeUnlabeled(sub)
			if kf, ok := kept[code.Key()]; ok {
				if minSub < 0 || kf.Support < minSub {
					minSub = kf.Support
				}
			}
			return true
		})
		if minSub >= 0 && float64(minSub) < gamma*float64(f.Support) {
			continue // not discriminative enough over what we already index
		}
		kept[f.Key] = f
		out = append(out, f)
	}
	// Restore the (edges desc, support asc, key) order of Mine.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Edges != out[j].Edges {
			return out[i].Edges > out[j].Edges
		}
		if out[i].Support != out[j].Support {
			return out[i].Support < out[j].Support
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// isPath reports whether g is a simple path: acyclic, max degree 2.
func isPath(g *graph.Graph) bool {
	if g.M() != g.N()-1 {
		return false
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > 2 {
			return false
		}
	}
	return true
}

func clearMap(m map[string]bool) {
	for k := range m {
		delete(m, k)
	}
}
