// Disk-fault tests: every WAL append/fsync or snapshot-write failure
// must poison the store — sticky rejection of further mutations, reads
// untouched — and a later recovery over the same directory with a
// healthy filesystem must land on exactly the acknowledged prefix.
//
// External test package: faultfs imports store for the FS interface, so
// an in-package test importing faultfs would be an import cycle.

package store_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pis/internal/distance"
	"pis/internal/faultfs"
	"pis/internal/graph"
	"pis/internal/index"
	"pis/internal/mining"
	"pis/internal/store"
)

// faultState builds a tiny indexed graph set for snapshot payloads
// (mirrors the in-package test helpers).
func faultState(t *testing.T, n int, seed int64) ([]*graph.Graph, *index.Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	graphs := make([]*graph.Graph, n)
	for i := range graphs {
		graphs[i] = tinyGraph(rng)
	}
	feats, err := mining.Mine(graphs, mining.Options{MaxEdges: 3, MinEdges: 2, MinSupportFraction: 0.1, SampleSize: n})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(graphs, feats, index.Options{Metric: distance.EdgeMutation{}})
	if err != nil {
		t.Fatal(err)
	}
	return graphs, idx
}

func tinyGraph(rng *rand.Rand) *graph.Graph {
	n := 3 + rng.Intn(5)
	b := graph.NewBuilder(n, 2*n)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.VLabel(rng.Intn(3)))
	}
	for v := int32(1); v < int32(n); v++ {
		b.AddEdge(rng.Int31n(v), v, graph.ELabel(rng.Intn(2)))
	}
	return b.MustBuild()
}

func idRange(n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

// newFaultStore creates a store over ffs whose initial snapshot holds
// nBase graphs with ids 0..nBase-1.
func newFaultStore(t *testing.T, dir string, ffs *faultfs.FS, nBase int) *store.Store {
	t.Helper()
	graphs, idx := faultState(t, nBase, 1)
	st, err := store.CreateFS(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	snap := &store.Snapshot{
		NextID:  int32(nBase),
		Base:    graphs,
		BaseIDs: idRange(nBase),
		Index:   idx,
	}
	if err := st.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestWALFsyncFailurePoisonsStore(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	st := newFaultStore(t, dir, ffs, 8)
	defer st.Close()
	rng := rand.New(rand.NewSource(2))

	// Two acknowledged mutations before the disk goes bad.
	if err := st.AppendInsert(8, tinyGraph(rng)); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendDelete(3); err != nil {
		t.Fatal(err)
	}

	ffs.FailAfter(faultfs.OpSync, ffs.Count(faultfs.OpSync))
	err := st.AppendInsert(9, tinyGraph(rng))
	if err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	if !errors.Is(err, store.ErrPoisoned) || !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("error %v should wrap ErrPoisoned and the injected fault", err)
	}

	// Sticky: later mutations are rejected outright, without touching disk.
	if err := st.AppendDelete(1); !errors.Is(err, store.ErrPoisoned) {
		t.Fatalf("append after poisoning = %v, want ErrPoisoned", err)
	}
	if err := st.WriteSnapshot(&store.Snapshot{}); !errors.Is(err, store.ErrPoisoned) {
		t.Fatalf("snapshot after poisoning = %v, want ErrPoisoned", err)
	}
	if s := st.Stats(); !s.Poisoned || s.PoisonReason == "" {
		t.Fatalf("stats not poisoned: %+v", s)
	}
	if st.Poisoned() == nil {
		t.Fatal("Poisoned() returned nil on a poisoned store")
	}

	// Recovery over the same directory with a healthy filesystem sees
	// exactly the acknowledged prefix: the un-acked insert is gone.
	st2, snap, recs, err := store.Open(dir, distance.EdgeMutation{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(snap.Base) != 8 {
		t.Fatalf("recovered base %d graphs, want 8", len(snap.Base))
	}
	if len(recs) != 2 || recs[0].Op != store.OpInsert || recs[0].ID != 8 ||
		recs[1].Op != store.OpDelete || recs[1].ID != 3 {
		t.Fatalf("recovered records %+v, want the two acked mutations", recs)
	}
	// The reopened store is healthy and accepts appends again.
	if err := st2.AppendDelete(2); err != nil {
		t.Fatal(err)
	}
}

// TestTornWALWriteDropsTornTail tears a WAL append mid-record AND fails
// the repair truncate, leaving real garbage on disk. Recovery must scan
// past the acked prefix, drop the torn bytes, and resume cleanly.
func TestTornWALWriteDropsTornTail(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	st := newFaultStore(t, dir, ffs, 8)
	defer st.Close()
	rng := rand.New(rand.NewSource(3))

	if err := st.AppendInsert(8, tinyGraph(rng)); err != nil {
		t.Fatal(err)
	}
	ffs.TornWrite(ffs.Count(faultfs.OpWrite)+1, 5)
	ffs.FailAfter(faultfs.OpFTruncate, ffs.Count(faultfs.OpFTruncate))
	if err := st.AppendInsert(9, tinyGraph(rng)); err == nil {
		t.Fatal("torn append succeeded")
	}
	if !st.Stats().Poisoned {
		t.Fatal("store not poisoned after torn write")
	}
	st.Close()

	st2, _, recs, err := store.Open(dir, distance.EdgeMutation{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(recs) != 1 || recs[0].ID != 8 {
		t.Fatalf("recovered records %+v, want only the acked insert of 8", recs)
	}
	if st2.Stats().Recovery.DroppedBytes == 0 {
		t.Fatal("recovery reported no dropped bytes despite the torn tail")
	}
	if err := st2.AppendDelete(4); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotWriteFailurePoisons(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	st := newFaultStore(t, dir, ffs, 6)
	defer st.Close()
	rng := rand.New(rand.NewSource(4))
	if err := st.AppendInsert(6, tinyGraph(rng)); err != nil {
		t.Fatal(err)
	}

	// The atomic temp+rename publish fails at the rename.
	ffs.FailAfter(faultfs.OpRename, ffs.Count(faultfs.OpRename))
	graphs, idx := faultState(t, 6, 1)
	snap := &store.Snapshot{NextID: 7, Base: graphs, BaseIDs: idRange(6), Index: idx}
	if err := st.WriteSnapshot(snap); err == nil {
		t.Fatal("snapshot write with failing rename succeeded")
	}
	if !st.Stats().Poisoned {
		t.Fatal("store not poisoned after snapshot failure")
	}
	if err := st.AppendDelete(1); !errors.Is(err, store.ErrPoisoned) {
		t.Fatalf("append after snapshot failure = %v, want ErrPoisoned", err)
	}

	// The failed snapshot never became visible: recovery uses the old
	// snapshot plus the acked WAL record.
	_, snap2, recs, err := store.Open(dir, distance.EdgeMutation{})
	if err != nil {
		t.Fatal(err)
	}
	if len(snap2.Base) != 6 || len(recs) != 1 || recs[0].ID != 6 {
		t.Fatalf("recovered base=%d records=%+v, want the pre-failure state", len(snap2.Base), recs)
	}
}

// TestStoreChaosAckedPrefix runs randomized mutations under seeded
// random write/sync/rename faults. Whatever the store acknowledged
// before poisoning itself must be exactly what a healthy reopen
// recovers — no lost acks, no ghost mutations.
func TestStoreChaosAckedPrefix(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			ffs := faultfs.New(nil)
			st := newFaultStore(t, dir, ffs, 8)
			rng := rand.New(rand.NewSource(seed))
			ffs.Chaos(seed, 0.05)

			type op struct {
				ins bool
				id  int32
			}
			var acked []op
			next := int32(8)
			for i := 0; i < 200; i++ {
				var o op
				var err error
				if rng.Intn(3) > 0 {
					o = op{ins: true, id: next}
					err = st.AppendInsert(o.id, tinyGraph(rng))
				} else {
					o = op{ins: false, id: rng.Int31n(next)}
					err = st.AppendDelete(o.id)
				}
				if err != nil {
					if !errors.Is(err, store.ErrPoisoned) {
						t.Fatalf("mutation error not poisoning: %v", err)
					}
					break
				}
				acked = append(acked, o)
				if o.ins {
					next++
				}
			}
			st.Close() // may fail under chaos; recovery must not care

			_, _, recs, err := store.Open(dir, distance.EdgeMutation{})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			if len(recs) != len(acked) {
				t.Fatalf("recovered %d records, acknowledged %d", len(recs), len(acked))
			}
			for i, r := range recs {
				want := store.OpDelete
				if acked[i].ins {
					want = store.OpInsert
				}
				if r.Op != want || r.ID != acked[i].id {
					t.Fatalf("record %d = {%v %d}, want {%v %d}", i, r.Op, r.ID, want, acked[i].id)
				}
			}
		})
	}
}
