// Filesystem seam: every disk operation the store performs goes through
// the FS interface, with OSFS (the real os package calls) as the default.
// Production code never notices the indirection; fault-injection tests
// swap in internal/faultfs to fail the nth fsync, tear a write short, or
// delay operations, turning "what if the disk dies mid-append" from a
// thought experiment into a deterministic unit test.

package store

import (
	"io"
	"os"
)

// File is the store's view of one open file. *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
	// Truncate cuts the file to size bytes.
	Truncate(size int64) error
}

// FS abstracts the filesystem operations the store performs. All methods
// mirror the os package functions of the same name. Implementations must
// be safe for concurrent use (the os package is).
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	Stat(name string) (os.FileInfo, error)
	ReadFile(name string) ([]byte, error)
	Open(name string) (File, error)
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
}

// OSFS is the real filesystem: every method is the matching os call.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
