package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pis/internal/distance"
	"pis/internal/graph"
	"pis/internal/index"
	"pis/internal/mining"
)

// testState builds a tiny indexed graph set for snapshot payloads.
func testState(t *testing.T, n int, seed int64) ([]*graph.Graph, *index.Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	graphs := make([]*graph.Graph, n)
	for i := range graphs {
		graphs[i] = randomGraph(rng)
	}
	feats, err := mining.Mine(graphs, mining.Options{MaxEdges: 3, MinEdges: 2, MinSupportFraction: 0.1, SampleSize: n})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(graphs, feats, index.Options{Metric: distance.EdgeMutation{}})
	if err != nil {
		t.Fatal(err)
	}
	return graphs, idx
}

func randomGraph(rng *rand.Rand) *graph.Graph {
	n := 3 + rng.Intn(5)
	b := graph.NewBuilder(n, 2*n)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.VLabel(rng.Intn(3)))
	}
	for v := int32(1); v < int32(n); v++ {
		b.AddEdge(rng.Int31n(v), v, graph.ELabel(rng.Intn(2))) // spanning tree: connected
	}
	return b.MustBuild()
}

func seqIDs(start int32, n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = start + int32(i)
	}
	return ids
}

// createWithSnapshot builds a store whose initial snapshot holds graphs.
func createWithSnapshot(t *testing.T, dir string, graphs []*graph.Graph, idx *index.Index) *Store {
	t.Helper()
	st, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{
		NextID:  int32(len(graphs)),
		Base:    graphs,
		BaseIDs: seqIDs(0, len(graphs)),
		Index:   idx,
	}
	if err := st.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	graphs, idx := testState(t, 12, 1)
	st := createWithSnapshot(t, dir, graphs, idx)

	rng := rand.New(rand.NewSource(2))
	ins := randomGraph(rng)
	if err := st.AppendInsert(12, ins); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendDelete(3); err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.WALRecords != 2 || s.SnapshotSeq != 1 || s.Checkpoints != 1 {
		t.Fatalf("stats = %+v, want 2 wal records, seq 1", s)
	}
	st.Close()

	st2, snap, recs, err := Open(dir, distance.EdgeMutation{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(snap.Base) != 12 || snap.NextID != 12 || len(snap.Delta) != 0 || len(snap.Tombs) != 0 {
		t.Fatalf("snapshot shape: base=%d nextID=%d", len(snap.Base), snap.NextID)
	}
	if snap.Index.Fingerprint() != graph.Fingerprint(snap.Base) {
		t.Fatal("recovered index fingerprint does not match recovered graphs")
	}
	if len(recs) != 2 || recs[0].Op != OpInsert || recs[0].ID != 12 || recs[1].Op != OpDelete || recs[1].ID != 3 {
		t.Fatalf("recovered records %+v", recs)
	}
	var a, b bytes.Buffer
	graph.WriteDB(&a, []*graph.Graph{ins})
	graph.WriteDB(&b, []*graph.Graph{recs[0].Graph})
	if a.String() != b.String() {
		t.Fatal("inserted graph did not round-trip through the WAL")
	}
	if s := st2.Stats(); s.Recovery.ReplayedRecords != 2 || s.Recovery.DroppedBytes != 0 {
		t.Fatalf("recovery stats %+v", s.Recovery)
	}

	// The reopened store accepts appends immediately.
	if err := st2.AppendDelete(5); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCheckpointResetsWAL(t *testing.T) {
	dir := t.TempDir()
	graphs, idx := testState(t, 10, 3)
	st := createWithSnapshot(t, dir, graphs, idx)
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng)
	if err := st.AppendInsert(10, g); err != nil {
		t.Fatal(err)
	}
	// Checkpoint: the insert moves into the snapshot delta; the WAL resets.
	snap := &Snapshot{
		NextID:   11,
		Base:     graphs,
		BaseIDs:  seqIDs(0, len(graphs)),
		Index:    idx,
		Delta:    []*graph.Graph{g},
		DeltaIDs: []int32{10},
	}
	if err := st.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if s := st.Stats(); s.WALRecords != 0 || s.SnapshotSeq != 2 {
		t.Fatalf("after checkpoint: %+v", s)
	}
	st.Close()

	_, snap2, recs, err := Open(dir, distance.EdgeMutation{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("replayed %d records from a fresh WAL", len(recs))
	}
	if len(snap2.Delta) != 1 || snap2.DeltaIDs[0] != 10 || snap2.NextID != 11 {
		t.Fatalf("snapshot delta not preserved: %+v", snap2.DeltaIDs)
	}
	// The old snapshot/WAL pair was cleaned up.
	if _, err := os.Stat(filepath.Join(dir, "snap-000001.pissnap")); !os.IsNotExist(err) {
		t.Error("old snapshot not removed")
	}
}

// TestStoreTornAndCorruptTail: truncate or flip bytes at and inside every
// record boundary; recovery must return exactly the records before the
// damage and truncate the log so appends resume cleanly.
func TestStoreTornAndCorruptTail(t *testing.T) {
	dir := t.TempDir()
	graphs, idx := testState(t, 8, 5)
	st := createWithSnapshot(t, dir, graphs, idx)
	rng := rand.New(rand.NewSource(6))
	const nRecs = 6
	for i := 0; i < nRecs; i++ {
		if i%2 == 0 {
			if err := st.AppendInsert(int32(8+i), randomGraph(rng)); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := st.AppendDelete(int32(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st.Close()
	walPath := filepath.Join(dir, "wal-000001")
	clean, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	infos, validLen, err := ScanWAL(walPath)
	if err != nil || len(infos) != nRecs || validLen != int64(len(clean)) {
		t.Fatalf("ScanWAL: %d records, %d/%d bytes, err %v", len(infos), validLen, len(clean), err)
	}

	damage := func(name string, mutate func([]byte) []byte, wantRecs int) {
		t.Helper()
		cdir := t.TempDir()
		copyDir(t, dir, cdir)
		if err := os.WriteFile(filepath.Join(cdir, "wal-000001"), mutate(append([]byte(nil), clean...)), 0o644); err != nil {
			t.Fatal(err)
		}
		st2, _, recs, err := Open(cdir, distance.EdgeMutation{})
		if err != nil {
			t.Fatalf("%s: recovery failed: %v", name, err)
		}
		defer st2.Close()
		if len(recs) != wantRecs {
			t.Fatalf("%s: recovered %d records, want %d", name, len(recs), wantRecs)
		}
		for i, r := range recs {
			if r.ID != infos[i].ID || r.Op != infos[i].Op {
				t.Fatalf("%s: record %d diverged", name, i)
			}
		}
		// Appends continue from a clean boundary after tail truncation.
		if err := st2.AppendDelete(2); err != nil {
			t.Fatalf("%s: append after recovery: %v", name, err)
		}
		again, _, err := ScanWAL(filepath.Join(cdir, "wal-000001"))
		if err != nil || len(again) != wantRecs+1 {
			t.Fatalf("%s: post-recovery wal has %d records, want %d", name, len(again), wantRecs+1)
		}
	}

	for i, ri := range infos {
		// Truncation exactly at the record boundary: all i+1 records survive.
		damage("truncate-at-end", func(b []byte) []byte { return b[:ri.End] }, i+1)
		// Truncation mid-record: record i is torn, prefix survives.
		mid := ri.Start + (ri.End-ri.Start)/2
		damage("truncate-mid", func(b []byte) []byte { return b[:mid] }, i)
		// Bit flip mid-record: checksum kills record i and the tail.
		damage("flip-mid", func(b []byte) []byte { b[mid] ^= 0x40; return b }, i)
		// Bit flip in the length prefix.
		damage("flip-len", func(b []byte) []byte { b[ri.Start] ^= 0x10; return b }, i)
	}
	// Garbage appended after the last record is dropped.
	damage("garbage-tail", func(b []byte) []byte { return append(b, 0xde, 0xad, 0xbe) }, nRecs)
}

func TestRootManifest(t *testing.T) {
	dir := t.TempDir()
	root := filepath.Join(dir, "db")
	if RootExists(root) {
		t.Fatal("empty dir reported as store")
	}
	if err := WriteRootManifest(root, 4); err != nil {
		t.Fatal(err)
	}
	n, err := ReadRootManifest(root)
	if err != nil || n != 4 {
		t.Fatalf("ReadRootManifest = %d, %v", n, err)
	}
	if ShardDir(root, 2) != filepath.Join(root, "shard-002") {
		t.Fatalf("ShardDir = %q", ShardDir(root, 2))
	}
}

func TestOpenRejectsMissingStore(t *testing.T) {
	if _, _, _, err := Open(t.TempDir(), distance.EdgeMutation{}); err == nil {
		t.Fatal("Open of an empty directory succeeded")
	}
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			sub := filepath.Join(dst, e.Name())
			if err := os.MkdirAll(sub, 0o755); err != nil {
				t.Fatal(err)
			}
			copyDir(t, filepath.Join(src, e.Name()), sub)
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
