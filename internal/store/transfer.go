// Replica transfer: the store-side endpoints the cluster layer uses to
// ship a whole segment store (or just its WAL tail) to a rejoining
// replica. The source exposes a consistent view of its on-disk files;
// the receiver stages them through an Install, which commits the
// MANIFEST last — so an aborted or crashed transfer leaves a directory
// with no MANIFEST, which Open rejects cleanly and the caller retries
// or rebuilds, never a store stitched from two checkpoints.

package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// TransferState names the files a full store transfer must copy: the
// live snapshot, its paired WAL, and the index side file when the
// snapshot uses one. Manifest is the MANIFEST payload committing that
// set; the receiver writes it only after every named file has landed.
//
// The view is consistent at the moment of the call. A checkpoint racing
// the transfer swings the manifest and unlinks the old files, so a
// reader streaming them fails mid-copy — the transfer then restarts
// against the new state rather than mixing generations.
type TransferState struct {
	Manifest []byte
	Files    []string
}

// TransferState returns the store's current transferable file set.
func (s *Store) TransferState() (*TransferState, error) {
	s.mu.Lock()
	seq := s.seq
	s.mu.Unlock()
	if seq == 0 {
		return nil, fmt.Errorf("store: no snapshot yet, nothing to transfer")
	}
	snapName := fmt.Sprintf("snap-%06d.pissnap", seq)
	walName := fmt.Sprintf("wal-%06d", seq)
	ts := &TransferState{
		Manifest: fmt.Appendf(nil, "%s\nsnapshot %s\nwal %s\n", manifestMagic, snapName, walName),
		Files:    []string{snapName, walName},
	}
	if _, err := s.fsOrOS().Stat(filepath.Join(s.dir, idxFileName(seq))); err == nil {
		ts.Files = append(ts.Files, idxFileName(seq))
	}
	return ts, nil
}

// WALRecords decodes the records currently in the active log, in append
// order. Record i (0-based) is the snapshot's MutSeq+i+1-th mutation
// ever applied to the segment, which is the contract WAL shipping
// relies on to resume a lagging replica from its own sequence number.
// An append racing the scan either lands entirely (and is returned) or
// ends the scan at the previous record boundary; both are valid
// prefixes of the log.
func (s *Store) WALRecords() ([]Record, error) {
	s.mu.Lock()
	seq := s.seq
	s.mu.Unlock()
	if seq == 0 {
		return nil, fmt.Errorf("store: no active WAL yet")
	}
	infos, _, err := scanWAL(s.fsOrOS(), filepath.Join(s.dir, fmt.Sprintf("wal-%06d", seq)))
	if err != nil {
		return nil, fmt.Errorf("store: scanning wal for shipping: %w", err)
	}
	recs := make([]Record, len(infos))
	for i, ri := range infos {
		recs[i] = ri.Record
	}
	return recs, nil
}

// An Install stages a transferred store into dir: data files first via
// CreateFile, then Commit writes the MANIFEST last. Before Commit the
// directory holds no MANIFEST, so Exists reports false and Open fails —
// a half-finished transfer is indistinguishable from no store at all.
type Install struct {
	dir string
	fs  FS
}

// NewInstall prepares dir (created if missing) to receive a transfer.
// Leftover files from a previous aborted transfer are overwritten as the
// new files stream in; an existing committed store is refused, the
// caller must remove it first.
func NewInstall(dir string, fs FS) (*Install, error) {
	if fs == nil {
		fs = OSFS
	}
	if existsFS(fs, dir) {
		return nil, fmt.Errorf("store: %s already holds a committed segment store", dir)
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Install{dir: dir, fs: fs}, nil
}

// CreateFile opens one incoming data file for writing. The name must be
// a plain file name from the source's TransferState — path separators,
// "..", and the MANIFEST itself are rejected, so a malicious or corrupt
// source cannot write outside the store directory or commit early.
// Close the returned file (after a Sync) before Commit.
func (in *Install) CreateFile(name string) (File, error) {
	if err := checkTransferName(name); err != nil {
		return nil, err
	}
	return in.fs.OpenFile(filepath.Join(in.dir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// Commit validates the manifest and installs it atomically, making the
// staged files the store's durable state. The named snapshot and WAL
// must have been staged; committing a manifest whose files are missing
// would create a store that can never open.
func (in *Install) Commit(manifest []byte) error {
	snapName, walName, err := ParseManifest(manifest)
	if err != nil {
		return fmt.Errorf("store: transferred manifest: %w", err)
	}
	for _, name := range []string{snapName, walName} {
		if _, err := in.fs.Stat(filepath.Join(in.dir, name)); err != nil {
			return fmt.Errorf("store: manifest names unstaged file %s: %w", name, err)
		}
	}
	if err := writeFileAtomic(in.fs, in.dir, manifestName, func(w io.Writer) error {
		_, err := w.Write(manifest)
		return err
	}); err != nil {
		return fmt.Errorf("store: committing transferred manifest: %w", err)
	}
	return nil
}

// checkTransferName rejects file names that could escape the store
// directory or clobber its commit record.
func checkTransferName(name string) error {
	if name == "" || name == manifestName || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("store: invalid transfer file name %q", name)
	}
	return nil
}
