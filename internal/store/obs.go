// Observability hooks: WAL append/fsync latency and snapshot
// duration/volume feed the shared metrics registry.

package store

import (
	"io"

	"pis/internal/obs"
)

var (
	mWALAppends = obs.Default().Counter(
		"pis_wal_appends_total",
		"WAL records durably appended (insert and delete mutations).")
	mWALAppendSeconds = obs.Default().Histogram(
		"pis_wal_append_seconds",
		"Full WAL append latency per record: frame, write, and fsync.",
		obs.LatencyBuckets)
	mWALFsyncSeconds = obs.Default().Histogram(
		"pis_wal_fsync_seconds",
		"fsync slice of each WAL append; the gap to pis_wal_append_seconds is framing and the buffered write.",
		obs.LatencyBuckets)
	mWALBytes = obs.Default().Counter(
		"pis_wal_bytes_total",
		"Framed bytes appended to WALs.")

	mSnapshots = obs.Default().Counter(
		"pis_snapshots_total",
		"Snapshots (checkpoints) atomically installed.")
	mSnapshotSeconds = obs.Default().Histogram(
		"pis_snapshot_seconds",
		"Wall time of one snapshot install: serialize, fsync, rename, manifest swing.",
		obs.LatencyBuckets)
	mSnapshotBytes = obs.Default().Counter(
		"pis_snapshot_bytes_total",
		"Serialized snapshot bytes written (before fsync).")
	mSnapshotLastBytes = obs.Default().Gauge(
		"pis_snapshot_last_bytes",
		"Size of the most recently written snapshot.")

	mStorePoisoned = obs.Default().Gauge(
		"pis_store_poisoned",
		"1 when any store in this process has latched a disk fault and degraded to read-only.")
	mPoisonEvents = obs.Default().Counter(
		"pis_store_poison_events_total",
		"Disk faults that poisoned a store (first fault per store).")
)

// countingWriter tracks bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
