// Package store implements the durable storage engine under one mutable
// database segment: an atomic on-disk snapshot of the segment's full
// state plus an append-only write-ahead log of the mutations applied
// since that snapshot was taken.
//
// Layout of one segment store directory:
//
//	MANIFEST              names the live snapshot/WAL pair (temp+rename)
//	snap-<seq>.pissnap    snapshot: graphs, base index, tombstones, delta
//	wal-<seq>             mutation log since snapshot <seq>
//
// Every mutation is framed as a length-prefixed, CRC32-checksummed
// record and fsync'd before the store acknowledges it, so an
// acknowledged Insert or Delete survives a crash at any instant. A
// checkpoint writes a fresh snapshot via temp-file-then-rename, creates
// the paired empty WAL, and only then swings MANIFEST — so recovery
// always finds a consistent (snapshot, log) pair no matter where the
// process died. Replay tolerates a torn or corrupted log tail: the valid
// prefix is applied, the tail is discarded and truncated away, and the
// loss is reported in RecoveryStats (only a mutation that was never
// acknowledged can be in the tail).
//
// The store knows nothing about searching; the segment package layers
// the live database on top and the shard package arranges one store per
// shard under a root directory (WriteRootManifest/ShardDir).
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"pis/internal/binio"
	"pis/internal/distance"
	"pis/internal/graph"
	"pis/internal/index"
)

const (
	manifestName  = "MANIFEST"
	manifestMagic = "pis-segment-store v1"
	snapMagic     = "PISSNAP2"

	// WAL record op codes.
	OpInsert byte = 1
	OpDelete byte = 2
)

// Record is one decoded WAL mutation.
type Record struct {
	Op    byte
	ID    int32
	Graph *graph.Graph // OpInsert only
}

// RecordInfo is a Record plus its framing position, for WAL inspection.
type RecordInfo struct {
	Record
	Start, End int64 // byte offsets of the framed record in the log
}

// Snapshot is the full durable state of one segment at a checkpoint.
type Snapshot struct {
	// NextID is the lowest global id never assigned through this segment;
	// persisted so a crash after deletes and a compaction cannot lead to
	// id reuse.
	NextID int32
	// Base and BaseIDs are the indexed graphs with their global ids.
	Base    []*graph.Graph
	BaseIDs []int32
	// Index is the fragment index over Base.
	Index *index.Index
	// Tombs lists tombstoned global ids (base or delta positions).
	Tombs []int32
	// Delta and DeltaIDs are inserted, not-yet-indexed graphs.
	Delta    []*graph.Graph
	DeltaIDs []int32
	// MutSeq is the shard's mutation sequence number at checkpoint time:
	// the count of acknowledged mutations (inserts + deletes) ever applied
	// to the shard. The live sequence is then MutSeq plus the record count
	// of the active WAL, which is what lets replica catch-up decide
	// between WAL shipping and a full snapshot transfer by comparing two
	// numbers. Zero in snapshots written before the field existed.
	MutSeq uint64
}

// RecoveryStats describes what Open found on disk.
type RecoveryStats struct {
	SnapshotSeq     uint64 // sequence number of the snapshot loaded
	ReplayedRecords int    // valid WAL records applied after the snapshot
	DroppedBytes    int64  // torn/corrupt WAL tail discarded (0 = clean)
}

// Stats is the live durability state of one store.
type Stats struct {
	WALRecords     int64 // records in the active log (since last snapshot)
	WALBytes       int64
	SnapshotSeq    uint64
	Checkpoints    int64     // snapshots written by this process
	LastCheckpoint time.Time // zero when no snapshot was written yet
	Recovery       RecoveryStats
	// Poisoned reports the store is in degraded read-only mode after a
	// disk fault; PoisonReason carries the original error text.
	Poisoned     bool
	PoisonReason string
}

// ErrPoisoned is wrapped by every mutation error after a disk fault has
// poisoned the store. Use errors.Is to detect it.
var ErrPoisoned = errors.New("store poisoned (read-only after a disk fault)")

// Store is the durable backing of one segment. Appends and checkpoints
// are safe for concurrent use.
type Store struct {
	dir string
	fs  FS

	mu             sync.Mutex
	wal            File
	walRecords     int64
	walBytes       int64
	seq            uint64
	checkpoints    int64
	lastCheckpoint time.Time
	recovery       RecoveryStats
	// poisoned latches the first WAL/snapshot disk fault. Once set, every
	// later mutation fails with ErrPoisoned: after a failed fsync the
	// kernel may have dropped the dirty pages, so "retry and hope" can
	// acknowledge a mutation that never reached disk. Reads are untouched.
	poisoned error
}

// Exists reports whether dir holds an initialized segment store.
func Exists(dir string) bool { return existsFS(OSFS, dir) }

func existsFS(fs FS, dir string) bool {
	_, err := fs.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// Create prepares dir for a new segment store on the real filesystem.
func Create(dir string) (*Store, error) { return CreateFS(dir, nil) }

// CreateFS is Create with an explicit filesystem (nil means OSFS). The
// store is not readable until the first WriteSnapshot establishes the
// initial (snapshot, WAL) pair; a crash before that leaves no MANIFEST,
// so a later Open fails cleanly and the caller rebuilds.
func CreateFS(dir string, fs FS) (*Store, error) {
	if fs == nil {
		fs = OSFS
	}
	if existsFS(fs, dir) {
		return nil, fmt.Errorf("store: %s already holds a segment store", dir)
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, fs: fs}, nil
}

// Open recovers the segment state from dir on the real filesystem.
func Open(dir string, metric distance.Metric) (*Store, *Snapshot, []Record, error) {
	return OpenFS(dir, metric, nil)
}

// OpenFS is Open with an explicit filesystem (nil means OSFS): it
// recovers the segment state from dir — the newest valid snapshot plus
// the decoded valid prefix of its WAL, in append order. A torn or
// corrupt log tail is truncated away (and reported in Stats().Recovery);
// the WAL is then reopened for appends, so the store is immediately
// writable. The metric must match the one the index was built with.
func OpenFS(dir string, metric distance.Metric, fs FS) (*Store, *Snapshot, []Record, error) {
	return OpenWith(dir, metric, OpenOptions{FS: fs})
}

// OpenOptions tunes OpenWith beyond the defaults OpenFS uses.
type OpenOptions struct {
	// FS routes disk operations; nil means the real filesystem.
	FS FS
	// MappedIndex memory-maps the snapshot's index side file instead of
	// decoding it onto the heap, when the snapshot has one (snapshots of a
	// mapped index are written with the index in its own idx-*.pisidx3
	// file). It requires the real filesystem; with an injected FS the side
	// file is read through the FS and decoded onto the heap as usual.
	MappedIndex bool
}

// OpenWith is OpenFS with options; see OpenOptions.
func OpenWith(dir string, metric distance.Metric, o OpenOptions) (*Store, *Snapshot, []Record, error) {
	fs := o.FS
	if fs == nil {
		fs = OSFS
	}
	snapName, walName, err := readManifest(fs, dir)
	if err != nil {
		return nil, nil, nil, err
	}
	snap, seq, err := loadSnapshot(fs, filepath.Join(dir, snapName), metric, o.MappedIndex && fs == OSFS)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: snapshot %s: %w", snapName, err)
	}
	walPath := filepath.Join(dir, walName)
	infos, validLen, err := scanWAL(fs, walPath)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: wal %s: %w", walName, err)
	}
	st := &Store{dir: dir, fs: fs, seq: seq}
	fi, err := fs.Stat(walPath)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: wal %s: %w", walName, err)
	}
	if dropped := fi.Size() - validLen; dropped > 0 {
		// Truncate the torn tail so new appends continue from a clean
		// record boundary.
		if err := fs.Truncate(walPath, validLen); err != nil {
			return nil, nil, nil, fmt.Errorf("store: truncating torn wal tail: %w", err)
		}
		st.recovery.DroppedBytes = dropped
	}
	wal, err := fs.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: reopening wal: %w", err)
	}
	st.wal = wal
	st.walRecords = int64(len(infos))
	st.walBytes = validLen
	st.recovery.SnapshotSeq = seq
	st.recovery.ReplayedRecords = len(infos)
	recs := make([]Record, len(infos))
	for i, ri := range infos {
		recs[i] = ri.Record
	}
	return st, snap, recs, nil
}

// Close releases the WAL handle. Appends after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the live durability counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		WALRecords:     s.walRecords,
		WALBytes:       s.walBytes,
		SnapshotSeq:    s.seq,
		Checkpoints:    s.checkpoints,
		LastCheckpoint: s.lastCheckpoint,
		Recovery:       s.recovery,
	}
	if s.poisoned != nil {
		st.Poisoned = true
		st.PoisonReason = s.poisoned.Error()
	}
	return st
}

// Poisoned returns the sticky disk fault that switched the store to
// read-only mode, or nil while the store is healthy.
func (s *Store) Poisoned() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.poisoned
}

// poisonLocked latches the first disk fault; later mutations are
// rejected with ErrPoisoned. Requires s.mu held.
func (s *Store) poisonLocked(op string, cause error) error {
	err := fmt.Errorf("store: %s: %w", op, cause)
	if s.poisoned == nil {
		s.poisoned = err
		mStorePoisoned.Set(1)
		mPoisonEvents.Inc()
	}
	return fmt.Errorf("%w; store now rejects mutations: %w", err, ErrPoisoned)
}

// rejectPoisonedLocked is the fast-fail for mutations after a fault.
func (s *Store) rejectPoisonedLocked() error {
	return fmt.Errorf("%w (cause: %v)", ErrPoisoned, s.poisoned)
}

// AppendInsert durably logs the insertion of g under id: the record is
// framed, checksummed, written, and fsync'd before AppendInsert returns
// nil. On error the mutation must not be applied in memory.
func (s *Store) AppendInsert(id int32, g *graph.Graph) error {
	payload := make([]byte, 0, 64)
	payload = append(payload, OpInsert)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(id))
	payload = g.AppendBinary(payload)
	return s.append(payload)
}

// AppendDelete durably logs the deletion of id.
func (s *Store) AppendDelete(id int32) error {
	payload := make([]byte, 0, 8)
	payload = append(payload, OpDelete)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(id))
	return s.append(payload)
}

func (s *Store) append(payload []byte) error {
	rec := make([]byte, 0, len(payload)+8)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	appendStart := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.poisoned != nil {
		return s.rejectPoisonedLocked()
	}
	if s.wal == nil {
		return fmt.Errorf("store: no active WAL (store closed or never checkpointed)")
	}
	if _, err := s.wal.Write(rec); err != nil {
		s.truncateToAckedLocked()
		return s.poisonLocked("wal append", err)
	}
	fsyncStart := time.Now()
	if err := s.wal.Sync(); err != nil {
		// The failed fsync may have dropped any subset of the dirty pages;
		// nothing past the last acknowledged byte can be trusted.
		s.truncateToAckedLocked()
		return s.poisonLocked("wal fsync", err)
	}
	mWALFsyncSeconds.ObserveSince(fsyncStart)
	mWALAppendSeconds.ObserveSince(appendStart)
	mWALAppends.Inc()
	mWALBytes.Add(int64(len(rec)))
	s.walRecords++
	s.walBytes += int64(len(rec))
	return nil
}

// truncateToAckedLocked best-effort cuts the WAL back to the last
// acknowledged record boundary after a failed append, so a torn frame
// never sits between the acked prefix and whatever a still-running
// process might do next. Recovery tolerates a torn tail anyway; this
// just keeps the on-disk state tidy when the disk still answers.
// Requires s.mu held.
func (s *Store) truncateToAckedLocked() {
	if s.wal != nil {
		_ = s.wal.Truncate(s.walBytes)
	}
}

// WriteSnapshot atomically installs snap as the store's durable state
// and starts a fresh, empty WAL. Ordering: snapshot file (temp, fsync,
// rename), then its paired empty WAL, then the MANIFEST swing — a crash
// at any point leaves the previous pair or the new pair intact, never a
// mix. Old snapshot/WAL files are removed best-effort afterwards.
func (s *Store) WriteSnapshot(snap *Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.poisoned != nil {
		return s.rejectPoisonedLocked()
	}
	snapStart := time.Now()
	seq := s.seq + 1
	snapName := fmt.Sprintf("snap-%06d.pissnap", seq)
	walName := fmt.Sprintf("wal-%06d", seq)
	// A mapped index is already a complete on-disk image; keeping it in its
	// own side file (referenced by name from the snapshot header) lets a
	// later OpenWith memory-map it instead of decoding it onto the heap.
	// The side file is written before the snapshot that names it, so the
	// manifest swing below never exposes a snapshot whose index is missing.
	idxFile := ""
	if snap.Index != nil && snap.Index.IsMapped() {
		idxFile = idxFileName(seq)
		if err := writeFileAtomic(s.fsOrOS(), s.dir, idxFile, snap.Index.Save); err != nil {
			return s.poisonLocked("writing index file", err)
		}
	}
	var snapBytes int64
	if err := writeFileAtomic(s.fsOrOS(), s.dir, snapName, func(w io.Writer) error {
		cw := &countingWriter{w: w}
		err := writeSnapshot(cw, snap, seq, idxFile)
		snapBytes = cw.n
		return err
	}); err != nil {
		return s.poisonLocked("writing snapshot", err)
	}
	wal, err := s.fsOrOS().OpenFile(filepath.Join(s.dir, walName), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return s.poisonLocked("creating wal", err)
	}
	if err := wal.Sync(); err != nil {
		wal.Close()
		return s.poisonLocked("syncing wal", err)
	}
	if err := writeFileAtomic(s.fsOrOS(), s.dir, manifestName, func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s\nsnapshot %s\nwal %s\n", manifestMagic, snapName, walName)
		return err
	}); err != nil {
		wal.Close()
		return s.poisonLocked("writing manifest", err)
	}
	if s.wal != nil {
		s.wal.Close()
	}
	oldSeq := s.seq
	s.wal = wal
	s.seq = seq
	s.walRecords = 0
	s.walBytes = 0
	s.checkpoints++
	s.lastCheckpoint = time.Now()
	mSnapshots.Inc()
	mSnapshotSeconds.ObserveSince(snapStart)
	mSnapshotBytes.Add(snapBytes)
	mSnapshotLastBytes.Set(float64(snapBytes))
	if oldSeq > 0 {
		s.fsOrOS().Remove(filepath.Join(s.dir, fmt.Sprintf("snap-%06d.pissnap", oldSeq)))
		s.fsOrOS().Remove(filepath.Join(s.dir, fmt.Sprintf("wal-%06d", oldSeq)))
		// A live mapping of the old index side file survives the unlink
		// (the mapping pins the inode); the next open uses the new file.
		s.fsOrOS().Remove(filepath.Join(s.dir, idxFileName(oldSeq)))
	}
	return nil
}

// idxFileName names snapshot seq's index side file.
func idxFileName(seq uint64) string { return fmt.Sprintf("idx-%06d.pisidx3", seq) }

// fsOrOS guards against zero-value Stores constructed in tests.
func (s *Store) fsOrOS() FS {
	if s.fs == nil {
		return OSFS
	}
	return s.fs
}

// readManifest parses the MANIFEST, returning the snapshot and WAL names.
func readManifest(fs FS, dir string) (snapName, walName string, err error) {
	data, err := fs.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return "", "", fmt.Errorf("store: %s is not a segment store: %w", dir, err)
	}
	snapName, walName, err = ParseManifest(data)
	if err != nil {
		return "", "", fmt.Errorf("store: %s: %w", dir, err)
	}
	return snapName, walName, nil
}

// ParseManifest decodes a MANIFEST payload into the snapshot and WAL
// file names it points at. Exported for the replica-transfer path, which
// validates a manifest shipped over the wire before committing it.
func ParseManifest(data []byte) (snapName, walName string, err error) {
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 || lines[0] != manifestMagic {
		return "", "", fmt.Errorf("malformed MANIFEST")
	}
	for _, ln := range lines[1:] {
		key, val, ok := strings.Cut(ln, " ")
		if !ok || strings.ContainsAny(val, "/\\") {
			return "", "", fmt.Errorf("malformed MANIFEST line %q", ln)
		}
		switch key {
		case "snapshot":
			snapName = val
		case "wal":
			walName = val
		}
	}
	if snapName == "" || walName == "" {
		return "", "", fmt.Errorf("MANIFEST names no snapshot/wal pair")
	}
	return snapName, walName, nil
}

// snapChunk bounds one snapshot section payload. Graph sets and index
// streams larger than this span several sections, each with its own
// checksum, so a many-gigabyte database stays well under the per-section
// cap and a checkpoint written is always a checkpoint loadable.
const snapChunk = 64 << 20

// writeSnapshot serializes snap: magic, then a header section followed
// by base graphs / index / tombstones / delta graphs, each spread over
// one or more CRC-checksummed sections (the header carries the counts
// and the index byte length, so the reader knows where each run ends).
// A non-empty idxFile names the index side file written next to the
// snapshot; the index is then not embedded (its length field is zero and
// its chunk run is absent).
func writeSnapshot(w io.Writer, snap *Snapshot, seq uint64, idxFile string) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(snapMagic); err != nil {
		return err
	}
	sw := binio.NewSectionWriter(bw)

	var idx bytes.Buffer
	if idxFile == "" {
		if err := snap.Index.Save(&idx); err != nil {
			return err
		}
	}

	sw.Begin()
	sw.U64(seq)
	sw.U32(uint32(snap.NextID))
	sw.Uvarint(uint64(len(snap.Base)))
	sw.Uvarint(uint64(len(snap.Tombs)))
	sw.Uvarint(uint64(len(snap.Delta)))
	sw.U64(uint64(idx.Len()))
	// Trailing header fields added after PISSNAP2 shipped: the index side
	// file name, then the mutation sequence. Old snapshots end the header
	// at idxLen; the reader treats the absent fields as "index embedded"
	// and "sequence unknown (0)".
	sw.Uvarint(uint64(len(idxFile)))
	sw.Bytes([]byte(idxFile))
	sw.U64(snap.MutSeq)
	if err := sw.Flush(); err != nil {
		return err
	}

	writeGraphs := func(graphs []*graph.Graph, ids []int32) error {
		sw.Begin()
		var buf []byte
		for i, g := range graphs {
			sw.U32(uint32(ids[i]))
			buf = g.AppendBinary(buf[:0])
			sw.Uvarint(uint64(len(buf)))
			sw.Bytes(buf)
			if sw.Len() >= snapChunk && i+1 < len(graphs) {
				if err := sw.Flush(); err != nil {
					return err
				}
				sw.Begin()
			}
		}
		return sw.Flush()
	}
	if err := writeGraphs(snap.Base, snap.BaseIDs); err != nil {
		return err
	}

	for b := idx.Bytes(); idxFile == ""; {
		chunk := b
		if len(chunk) > snapChunk {
			chunk = b[:snapChunk]
		}
		sw.Begin()
		sw.Bytes(chunk)
		if err := sw.Flush(); err != nil {
			return err
		}
		b = b[len(chunk):]
		if len(b) == 0 {
			break
		}
	}

	sw.Begin()
	sw.I32Slab(snap.Tombs)
	if err := sw.Flush(); err != nil {
		return err
	}

	if err := writeGraphs(snap.Delta, snap.DeltaIDs); err != nil {
		return err
	}
	return bw.Flush()
}

// loadSnapshot reads and verifies one snapshot file. mapped asks for the
// index side file (when the snapshot has one) to be memory-mapped rather
// than heap-decoded; it must only be set when fs is the real filesystem.
func loadSnapshot(fs FS, path string, metric distance.Metric, mapped bool) (*Snapshot, uint64, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	magic := make([]byte, len(snapMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != snapMagic {
		return nil, 0, fmt.Errorf("not a PIS snapshot (magic %q)", magic)
	}
	sr := binio.NewSectionReader(br)
	if err := sr.Next(); err != nil {
		return nil, 0, fmt.Errorf("header: %w", err)
	}
	seq := sr.U64()
	snap := &Snapshot{NextID: int32(sr.U32())}
	nBase := int(sr.Uvarint())
	nTombs := int(sr.Uvarint())
	nDelta := int(sr.Uvarint())
	idxLen := sr.U64()
	idxFile := ""
	if sr.Remaining() > 0 { // absent in snapshots written before side files
		idxFile = string(sr.Bytes(int(sr.Uvarint())))
	}
	if sr.Remaining() > 0 { // absent before the mutation sequence existed
		snap.MutSeq = sr.U64()
	}
	if err := sr.Err(); err != nil {
		return nil, 0, fmt.Errorf("header: %w", err)
	}
	if strings.ContainsAny(idxFile, "/\\") {
		return nil, 0, fmt.Errorf("header: index file name %q escapes the store directory", idxFile)
	}

	readGraphs := func(n int, what string) ([]*graph.Graph, []int32, error) {
		if err := sr.Next(); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", what, err)
		}
		graphs := make([]*graph.Graph, 0, n)
		ids := make([]int32, 0, n)
		for i := 0; i < n; i++ {
			if sr.Remaining() == 0 { // chunk boundary
				if err := sr.Next(); err != nil {
					return nil, nil, fmt.Errorf("%s chunk after graph %d: %w", what, i, err)
				}
			}
			id := int32(sr.U32())
			enc := sr.Bytes(int(sr.Uvarint()))
			if sr.Err() != nil {
				return nil, nil, fmt.Errorf("%s graph %d: %w", what, i, sr.Err())
			}
			g, rest, err := graph.DecodeBinary(enc)
			if err != nil || len(rest) != 0 {
				return nil, nil, fmt.Errorf("%s graph %d: malformed encoding", what, i)
			}
			graphs = append(graphs, g)
			ids = append(ids, id)
		}
		return graphs, ids, nil
	}
	if snap.Base, snap.BaseIDs, err = readGraphs(nBase, "base"); err != nil {
		return nil, 0, err
	}

	if idxFile != "" {
		ip := filepath.Join(filepath.Dir(path), idxFile)
		if mapped {
			if snap.Index, err = index.OpenMapped(ip, metric); err != nil {
				return nil, 0, fmt.Errorf("index file %s: %w", idxFile, err)
			}
		} else {
			data, rerr := fs.ReadFile(ip)
			if rerr != nil {
				return nil, 0, fmt.Errorf("index file %s: %w", idxFile, rerr)
			}
			if snap.Index, err = index.Load(bytes.NewReader(data), metric); err != nil {
				return nil, 0, fmt.Errorf("index file %s: %w", idxFile, err)
			}
		}
	} else {
		// idxLen comes from the checksummed header, so trust it for the loop
		// bound — but grow the buffer from one chunk instead of preallocating
		// the full length, so even an (astronomically unlikely) corrupt value
		// that survived the CRC fails at a torn-section error, not an
		// allocation bomb.
		idxCap := idxLen
		if idxCap > snapChunk {
			idxCap = snapChunk
		}
		idxBytes := make([]byte, 0, idxCap)
		for uint64(len(idxBytes)) < idxLen {
			if err := sr.Next(); err != nil {
				return nil, 0, fmt.Errorf("index chunk at byte %d: %w", len(idxBytes), err)
			}
			idxBytes = append(idxBytes, sr.Bytes(sr.Remaining())...)
		}
		if uint64(len(idxBytes)) != idxLen {
			return nil, 0, fmt.Errorf("index: chunks hold %d bytes, header says %d", len(idxBytes), idxLen)
		}
		if snap.Index, err = index.Load(bytes.NewReader(idxBytes), metric); err != nil {
			return nil, 0, fmt.Errorf("index: %w", err)
		}
	}

	if err := sr.Next(); err != nil {
		return nil, 0, fmt.Errorf("tombstones: %w", err)
	}
	snap.Tombs = sr.I32Slab(nTombs)
	if err := sr.Err(); err != nil {
		return nil, 0, fmt.Errorf("tombstones: %w", err)
	}

	if snap.Delta, snap.DeltaIDs, err = readGraphs(nDelta, "delta"); err != nil {
		return nil, 0, err
	}
	return snap, seq, nil
}

// ScanWAL decodes the valid record prefix of a WAL file, returning the
// records with their framing offsets and the byte length of the valid
// prefix. A torn or checksum-failing record ends the scan without error:
// everything from its start offset on is untrusted tail.
func ScanWAL(path string) ([]RecordInfo, int64, error) {
	return scanWAL(OSFS, path)
}

func scanWAL(fs FS, path string) ([]RecordInfo, int64, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var out []RecordInfo
	off := int64(0)
	for {
		rec, end, ok := nextRecord(data, off)
		if !ok {
			return out, off, nil
		}
		rec.Start = off
		rec.End = end
		out = append(out, rec)
		off = end
	}
}

// nextRecord decodes one framed record at off; ok=false marks the end of
// the valid prefix (clean EOF, torn frame, bad checksum, or undecodable
// payload alike — the distinction is the caller's DroppedBytes count).
func nextRecord(data []byte, off int64) (ri RecordInfo, end int64, ok bool) {
	rest := data[off:]
	if len(rest) < 8 {
		return ri, 0, false
	}
	n := binary.LittleEndian.Uint32(rest)
	if n == 0 || uint64(n) > uint64(len(rest))-8 {
		return ri, 0, false
	}
	payload := rest[4 : 4+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4+n:]) {
		return ri, 0, false
	}
	switch payload[0] {
	case OpInsert:
		if len(payload) < 5 {
			return ri, 0, false
		}
		g, tail, err := graph.DecodeBinary(payload[5:])
		if err != nil || len(tail) != 0 {
			return ri, 0, false
		}
		ri.Op = OpInsert
		ri.ID = int32(binary.LittleEndian.Uint32(payload[1:]))
		ri.Graph = g
	case OpDelete:
		if len(payload) != 5 {
			return ri, 0, false
		}
		ri.Op = OpDelete
		ri.ID = int32(binary.LittleEndian.Uint32(payload[1:]))
	default:
		return ri, 0, false
	}
	return ri, off + int64(n) + 8, true
}

// writeFileAtomic writes name under dir via a temp file: content, fsync,
// rename, directory fsync. Readers see the old file or the new one,
// never a partial write.
func writeFileAtomic(fs FS, dir, name string, write func(w io.Writer) error) error {
	tmp, err := fs.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	defer fs.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(fs, dir)
}

func syncDir(fs FS, dir string) error {
	d, err := fs.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// --- root manifest: the shard layout above the per-segment stores ---

const (
	rootManifestMagic = "pis-store v1"
)

// ShardDir names shard i's segment store directory under root.
func ShardDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%03d", i))
}

// RootExists reports whether root holds a database store. It checks the
// manifest's content, not just its presence: on a case-insensitive
// filesystem a legacy index dir's lowercase "manifest" (a bare
// fingerprint) would otherwise satisfy a stat of "MANIFEST" and block
// the documented in-place migration.
func RootExists(root string) bool {
	data, err := os.ReadFile(filepath.Join(root, manifestName))
	if err != nil {
		return false
	}
	line, _, _ := strings.Cut(strings.TrimSpace(string(data)), "\n")
	return line == rootManifestMagic
}

// WriteRootManifest records the shard count for a database rooted at
// root, creating the directory if needed.
func WriteRootManifest(root string, shards int) error {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return writeFileAtomic(OSFS, root, manifestName, func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s\nshards %d\n", rootManifestMagic, shards)
		return err
	})
}

// ReadRootManifest returns the shard count recorded at root.
func ReadRootManifest(root string) (shards int, err error) {
	data, err := os.ReadFile(filepath.Join(root, manifestName))
	if err != nil {
		return 0, fmt.Errorf("store: %s is not a database store: %w", root, err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 || lines[0] != rootManifestMagic {
		return 0, fmt.Errorf("store: %s: malformed root MANIFEST", root)
	}
	for _, ln := range lines[1:] {
		if val, ok := strings.CutPrefix(ln, "shards "); ok {
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return 0, fmt.Errorf("store: %s: bad shard count %q", root, val)
			}
			return n, nil
		}
	}
	return 0, fmt.Errorf("store: %s: root MANIFEST names no shard count", root)
}
