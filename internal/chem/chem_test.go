package chem

import (
	"testing"

	"pis/internal/graph"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(20, Config{Seed: 42})
	b := Generate(20, Config{Seed: 42})
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("graph %d differs across same-seed runs", i)
		}
	}
	c := Generate(20, Config{Seed: 43})
	same := true
	for i := range a {
		if a[i].String() != c[i].String() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical databases")
	}
}

func TestGeneratedGraphsAreValidMolecules(t *testing.T) {
	db := Generate(200, Config{Seed: 7})
	for i, g := range db {
		if !g.Connected() {
			t.Fatalf("graph %d disconnected", i)
		}
		if g.N() < 8 {
			t.Fatalf("graph %d too small: %d vertices", i, g.N())
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) > 6 {
				t.Fatalf("graph %d vertex %d degree %d: not molecule-like", i, v, g.Degree(v))
			}
		}
	}
}

func TestSizeDistributionMatchesPaper(t *testing.T) {
	db := Generate(2000, Config{Seed: 1})
	s := Summarize(db)
	// Paper: avg 25 vertices / 27 edges, max 214/217. Accept a band.
	if s.AvgVertices < 18 || s.AvgVertices > 32 {
		t.Errorf("average vertices %.1f outside [18,32]", s.AvgVertices)
	}
	if s.AvgEdges < s.AvgVertices {
		t.Errorf("average edges %.1f below average vertices %.1f: too few rings",
			s.AvgEdges, s.AvgVertices)
	}
	if s.MaxVertices < 60 {
		t.Errorf("max vertices %d: size tail too light", s.MaxVertices)
	}
	if s.MaxVertices > 220 {
		t.Errorf("max vertices %d above clip", s.MaxVertices)
	}
}

func TestLabelSkew(t *testing.T) {
	db := Generate(500, Config{Seed: 3})
	s := Summarize(db)
	totalAtoms := 0
	for _, c := range s.AtomCounts {
		totalAtoms += c
	}
	carbonFrac := float64(s.AtomCounts[AtomC]) / float64(totalAtoms)
	if carbonFrac < 0.7 {
		t.Errorf("carbon fraction %.2f: not carbon-dominated", carbonFrac)
	}
	totalBonds := 0
	for _, c := range s.BondCounts {
		totalBonds += c
	}
	singleFrac := float64(s.BondCounts[BondSingle]) / float64(totalBonds)
	if singleFrac < 0.4 {
		t.Errorf("single-bond fraction %.2f too low", singleFrac)
	}
	if s.BondCounts[BondAromatic] == 0 || s.BondCounts[BondDouble] == 0 {
		t.Error("missing aromatic or double bonds entirely")
	}
	// Label diversity must exist, otherwise mutation distance is trivial.
	if len(s.BondCounts) < 3 {
		t.Errorf("only %d bond kinds", len(s.BondCounts))
	}
}

func TestWeightedGeneration(t *testing.T) {
	db := Generate(50, Config{Seed: 5, Weighted: true})
	for _, g := range db {
		for _, e := range g.Edges() {
			if e.Weight <= 0.5 || e.Weight >= 2.5 {
				t.Fatalf("bond weight %v outside plausible range", e.Weight)
			}
		}
		if g.VWeightAt(0) <= 0 {
			t.Fatal("vertex weights missing")
		}
	}
}

func TestSampleQueries(t *testing.T) {
	db := Generate(100, Config{Seed: 11})
	for _, m := range []int{4, 8, 16, 24} {
		qs := SampleQueries(db, 25, m, 99)
		if len(qs) != 25 {
			t.Fatalf("m=%d: got %d queries", m, len(qs))
		}
		for _, q := range qs {
			if q.M() != m {
				t.Fatalf("query has %d edges, want %d", q.M(), m)
			}
			if !q.Connected() {
				t.Fatal("disconnected query")
			}
		}
	}
	// Determinism.
	a := SampleQueries(db, 5, 8, 1)
	b := SampleQueries(db, 5, 8, 1)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatal("query sampling not deterministic")
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Graphs != 0 || s.AvgVertices != 0 {
		t.Error("empty summary not zero")
	}
}

func TestQueriesEmbedInSource(t *testing.T) {
	// Sampled queries must structurally embed somewhere in the database
	// (they were cut from it). Spot-check via fragment reconstruction.
	db := Generate(30, Config{Seed: 13})
	qs := SampleQueries(db, 10, 6, 17)
	for _, q := range qs {
		found := false
		for _, g := range db {
			if q.N() <= g.N() && q.M() <= g.M() && hasEmbedding(q, g) {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("sampled query embeds nowhere in the database")
		}
	}
}

// hasEmbedding is a tiny structural check to avoid importing iso (keeps the
// package dependency graph acyclic for tests): greedy DFS backtracking.
func hasEmbedding(p, h *graph.Graph) bool {
	assign := make([]int32, p.N())
	for i := range assign {
		assign[i] = -1
	}
	used := make([]bool, h.N())
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == p.N() {
			return true
		}
		for hv := int32(0); hv < int32(h.N()); hv++ {
			if used[hv] {
				continue
			}
			ok := true
			for _, e := range p.IncidentEdges(v) {
				w := p.Other(int(e), int32(v))
				if assign[w] >= 0 && h.EdgeBetween(hv, assign[w]) < 0 {
					ok = false
					break
				}
			}
			if ok {
				assign[v] = hv
				used[hv] = true
				if rec(v + 1) {
					return true
				}
				assign[v] = -1
				used[hv] = false
			}
		}
		return false
	}
	return rec(0)
}
