// Pragmatic SMILES corpus loader: one molecule per line ("SMILES" or
// "SMILES name", '#' comments), covering the organic subset plus the
// constructs screen datasets actually use — branches, ring closures
// (including %nn), explicit bonds, aromatic lowercase atoms, and bracket
// atoms reduced to their element symbol (charge, isotope, chirality and
// H counts are ignored; explicit [H] atoms are stripped). Exotic SMILES
// (multi-fragment '.', wildcards, elements outside the label space) fail
// with the file name, line number and column, never silently.

package chem

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"pis/internal/graph"
)

// SMILESReader decodes one molecule per non-comment line.
type SMILESReader struct {
	sc   *bufio.Scanner
	name string
	line int
	done bool
}

// NewSMILESReader reads SMILES lines from r; name labels error positions.
func NewSMILESReader(r io.Reader, name string) *SMILESReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	return &SMILESReader{sc: sc, name: name}
}

// Next returns the next molecule, or io.EOF after the last line.
func (r *SMILESReader) Next() (*graph.Graph, error) {
	if r.done {
		return nil, io.EOF
	}
	for {
		if !r.sc.Scan() {
			r.done = true
			if err := r.sc.Err(); err != nil {
				return nil, fmt.Errorf("%s:%d: %w", r.name, r.line, err)
			}
			return nil, io.EOF
		}
		r.line++
		ln := strings.TrimSpace(r.sc.Text())
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		smi, _, _ := strings.Cut(ln, " ")
		smi, _, _ = strings.Cut(smi, "\t")
		g, err := parseSMILES(smi)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", r.name, r.line, err)
		}
		return g, nil
	}
}

// ReadSMILES parses every line of a SMILES stream; name labels errors.
func ReadSMILES(r io.Reader, name string) ([]*graph.Graph, error) {
	sr := NewSMILESReader(r, name)
	var out []*graph.Graph
	for {
		g, err := sr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
}

// smilesAtom is one parsed atom: its vertex label, whether it was
// written lowercase (aromatic), or a stripped explicit hydrogen.
type smilesAtom struct {
	label    graph.VLabel
	aromatic bool
	hydrogen bool
}

type smilesParser struct {
	s   string
	pos int

	atoms []smilesAtom
	verts []int32 // graph vertex per atom; -1 for stripped hydrogens
	bonds [][3]int32

	prev    int          // previous atom index, -1 at a fresh root
	pending graph.ELabel // explicit bond for the next attachment
	hasBond bool
	stack   []int // open branch anchors
	rings   map[string]ringOpen
}

type ringOpen struct {
	atom    int
	bond    graph.ELabel
	hasBond bool
}

func (p *smilesParser) errf(format string, args ...any) error {
	return fmt.Errorf("bad SMILES at column %d: "+format, append([]any{p.pos + 1}, args...)...)
}

// addBond resolves the effective bond label between two atoms: explicit
// wins; two aromatic atoms default to aromatic; otherwise single.
func (p *smilesParser) addBond(a, b int, explicit graph.ELabel, hasExplicit bool) {
	l := BondSingle
	if hasExplicit {
		l = explicit
	} else if p.atoms[a].aromatic && p.atoms[b].aromatic {
		l = BondAromatic
	}
	p.bonds = append(p.bonds, [3]int32{int32(a), int32(b), int32(l)})
}

// atom consumes one atom token at pos, returning its parsed form.
func (p *smilesParser) atom() (smilesAtom, error) {
	s := p.s
	if s[p.pos] == '[' {
		end := strings.IndexByte(s[p.pos:], ']')
		if end < 0 {
			return smilesAtom{}, p.errf("unterminated bracket atom")
		}
		body := s[p.pos+1 : p.pos+end]
		p.pos += end + 1
		// Strip a leading isotope count.
		i := 0
		for i < len(body) && body[i] >= '0' && body[i] <= '9' {
			i++
		}
		if i == len(body) {
			return smilesAtom{}, p.errf("bracket atom %q has no element", "["+body+"]")
		}
		sym := body[i : i+1]
		if i+1 < len(body) && body[i+1] >= 'a' && body[i+1] <= 'z' && sym[0] >= 'A' && sym[0] <= 'Z' {
			// Two-letter element; reject if the pair is not one we know
			// (e.g. [C@H] keeps sym "C": '@' is not a lowercase letter).
			if _, ok := atomLabel(body[i : i+2]); ok {
				sym = body[i : i+2]
			}
		}
		if sym == "H" {
			return smilesAtom{hydrogen: true}, nil
		}
		aromatic := sym[0] >= 'a' && sym[0] <= 'z'
		l, ok := atomLabel(sym)
		if !ok {
			return smilesAtom{}, p.errf("unknown atom symbol %q", sym)
		}
		return smilesAtom{label: l, aromatic: aromatic}, nil
	}
	// Organic subset; two-letter halogens first.
	for _, two := range [...]string{"Cl", "Br"} {
		if strings.HasPrefix(s[p.pos:], two) {
			p.pos += 2
			return smilesAtom{label: AtomHalogen}, nil
		}
	}
	c := s[p.pos]
	switch c {
	case 'C', 'N', 'O', 'S', 'P', 'F', 'I', 'c', 'n', 'o', 's', 'p':
		p.pos++
		l, _ := atomLabel(strings.ToUpper(string(c)))
		return smilesAtom{label: l, aromatic: c >= 'a'}, nil
	}
	return smilesAtom{}, p.errf("unexpected character %q", string(c))
}

func (p *smilesParser) closeRing(key string) error {
	if open, ok := p.rings[key]; ok {
		delete(p.rings, key)
		if p.prev < 0 {
			return p.errf("ring closure %s before any atom", key)
		}
		explicit, hasExplicit := p.pending, p.hasBond
		if open.hasBond {
			explicit, hasExplicit = open.bond, true
		}
		p.addBond(open.atom, p.prev, explicit, hasExplicit)
	} else {
		if p.prev < 0 {
			return p.errf("ring opening %s before any atom", key)
		}
		p.rings[key] = ringOpen{atom: p.prev, bond: p.pending, hasBond: p.hasBond}
	}
	p.pending, p.hasBond = 0, false
	return nil
}

func parseSMILES(s string) (*graph.Graph, error) {
	if s == "" {
		return nil, fmt.Errorf("bad SMILES at column 1: empty")
	}
	p := &smilesParser{s: s, prev: -1, rings: map[string]ringOpen{}}
	for p.pos < len(s) {
		c := s[p.pos]
		switch {
		case c == '-' || c == '/' || c == '\\':
			p.pending, p.hasBond = BondSingle, true
			p.pos++
		case c == '=':
			p.pending, p.hasBond = BondDouble, true
			p.pos++
		case c == '#':
			p.pending, p.hasBond = BondTriple, true
			p.pos++
		case c == ':':
			p.pending, p.hasBond = BondAromatic, true
			p.pos++
		case c == '(':
			if p.prev < 0 {
				return nil, p.errf("branch opens before any atom")
			}
			p.stack = append(p.stack, p.prev)
			p.pos++
		case c == ')':
			if len(p.stack) == 0 {
				return nil, p.errf("unmatched branch close")
			}
			p.prev = p.stack[len(p.stack)-1]
			p.stack = p.stack[:len(p.stack)-1]
			p.pos++
		case c >= '0' && c <= '9':
			if err := p.closeRing(string(c)); err != nil {
				return nil, err
			}
			p.pos++
		case c == '%':
			if p.pos+2 >= len(s) {
				return nil, p.errf("truncated %%nn ring closure")
			}
			if err := p.closeRing(s[p.pos+1 : p.pos+3]); err != nil {
				return nil, err
			}
			p.pos += 3
		case c == '.':
			return nil, p.errf("multi-fragment SMILES ('.') is not supported")
		default:
			a, err := p.atom()
			if err != nil {
				return nil, err
			}
			p.atoms = append(p.atoms, a)
			cur := len(p.atoms) - 1
			if p.prev >= 0 && !a.hydrogen && !p.atoms[p.prev].hydrogen {
				p.addBond(p.prev, cur, p.pending, p.hasBond)
			}
			p.pending, p.hasBond = 0, false
			if a.hydrogen && p.prev >= 0 {
				continue // stay anchored at the heavy atom
			}
			p.prev = cur
		}
	}
	if len(p.stack) > 0 {
		return nil, fmt.Errorf("bad SMILES: %d unclosed branch(es)", len(p.stack))
	}
	if len(p.rings) > 0 {
		for k := range p.rings {
			return nil, fmt.Errorf("bad SMILES: ring bond %s never closed", k)
		}
	}

	nHeavy := 0
	p.verts = make([]int32, len(p.atoms))
	b := graph.NewBuilder(len(p.atoms), len(p.bonds))
	for i, a := range p.atoms {
		if a.hydrogen {
			p.verts[i] = -1
			continue
		}
		p.verts[i] = b.AddVertex(a.label)
		nHeavy++
	}
	if nHeavy == 0 {
		return nil, fmt.Errorf("bad SMILES: no heavy atoms")
	}
	for _, bd := range p.bonds {
		b.AddEdge(p.verts[bd[0]], p.verts[bd[1]], graph.ELabel(bd[2]))
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("bad SMILES: %w", err)
	}
	return g, nil
}
