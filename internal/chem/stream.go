// Streaming generation: the same molecules Generate produces, one at a
// time, so an out-of-core index build (index.BuildStreaming) can pass
// over a database far larger than RAM without ever materializing it.

package chem

import (
	"math/rand"

	"pis/internal/graph"
)

// Stream produces the exact Generate(·, cfg) sequence incrementally:
// the i-th Next() result equals Generate(n, cfg)[i] for any n > i.
// It satisfies index.GraphSource structurally and never ends.
type Stream struct {
	rng *rand.Rand
	cfg Config
}

// NewStream starts the deterministic molecule stream for cfg.
func NewStream(cfg Config) *Stream {
	cfg = cfg.normalized()
	return &Stream{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// Next generates the next molecule. The stream is infinite, so ok is
// always true; the consumer decides how many graphs to take.
func (s *Stream) Next() (*graph.Graph, bool) {
	return generateOne(s.rng, s.cfg), true
}
