package chem

import (
	"io"
	"strings"
	"testing"

	"pis/internal/graph"
)

const ethanolRecord = `ethanol
  prog
comment
  4  3  0  0  0  0  0  0  0  0999 V2000
    0.0000    0.0000    0.0000 C   0  0
    0.0000    0.0000    0.0000 C   0  0
    0.0000    0.0000    0.0000 O   0  0
    0.0000    0.0000    0.0000 H   0  0
  1  2  1  0
  2  3  1  0
  3  4  1  0
M  END
$$$$
`

const benzeneRecord = `benzene
  prog
comment
  6  6  0  0  0  0  0  0  0  0999 V2000
    0.0000    0.0000    0.0000 C   0  0
    0.0000    0.0000    0.0000 C   0  0
    0.0000    0.0000    0.0000 C   0  0
    0.0000    0.0000    0.0000 C   0  0
    0.0000    0.0000    0.0000 C   0  0
    0.0000    0.0000    0.0000 C   0  0
  1  2  4  0
  2  3  4  0
  3  4  4  0
  4  5  4  0
  5  6  4  0
  6  1  4  0
M  END
> <activity>
inactive

$$$$
`

func TestReadSDF(t *testing.T) {
	gs, err := ReadSDF(strings.NewReader(ethanolRecord+benzeneRecord), "test.sdf")
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 2 {
		t.Fatalf("got %d molecules, want 2", len(gs))
	}
	// Ethanol: the explicit hydrogen and its bond are stripped.
	if gs[0].N() != 3 || gs[0].M() != 2 {
		t.Errorf("ethanol: %d atoms / %d bonds, want 3/2", gs[0].N(), gs[0].M())
	}
	if gs[0].VLabelAt(2) != AtomO {
		t.Errorf("ethanol atom 3 = %d, want AtomO", gs[0].VLabelAt(2))
	}
	if gs[1].N() != 6 || gs[1].M() != 6 {
		t.Errorf("benzene: %d atoms / %d bonds, want 6/6", gs[1].N(), gs[1].M())
	}
	for _, e := range gs[1].Edges() {
		if e.Label != BondAromatic {
			t.Errorf("benzene bond label %d, want aromatic", e.Label)
		}
	}
}

// mutateRecord rewrites one line (1-based) of an SD record.
func mutateRecord(rec string, line int, repl string) string {
	lines := strings.Split(rec, "\n")
	lines[line-1] = repl
	return strings.Join(lines, "\n")
}

func dropFrom(rec string, line int) string {
	lines := strings.Split(rec, "\n")
	return strings.Join(lines[:line-1], "\n") + "\n"
}

func TestReadSDFMalformed(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  []string // substrings the error must contain
	}{
		{
			name:  "bad counts line",
			input: mutateRecord(ethanolRecord, 4, "  x  3  0  0999 V2000"),
			want:  []string{"test.sdf:4", "record 1", "bad counts line"},
		},
		{
			name:  "unknown atom symbol",
			input: mutateRecord(ethanolRecord, 6, "    0.0000    0.0000    0.0000 Xx  0  0"),
			want:  []string{"test.sdf:6", "record 1", `unknown atom symbol "Xx"`},
		},
		{
			name:  "truncated bond block",
			input: dropFrom(ethanolRecord, 10),
			want:  []string{"test.sdf:9", "record 1", "truncated bond block (1 of 3 bonds)"},
		},
		{
			name:  "truncated atom block",
			input: dropFrom(ethanolRecord, 7),
			want:  []string{"test.sdf:6", "record 1", "truncated atom block (2 of 4 atoms)"},
		},
		{
			name:  "bond outside molecule",
			input: mutateRecord(ethanolRecord, 9, "  1  9  1  0"),
			want:  []string{"test.sdf:9", "record 1", "bond 1-9 outside"},
		},
		{
			name:  "unknown bond type",
			input: mutateRecord(ethanolRecord, 9, "  1  2  8  0"),
			want:  []string{"test.sdf:9", "record 1", "unknown bond type 8"},
		},
		{
			name:  "second record positions",
			input: ethanolRecord + mutateRecord(benzeneRecord, 4, "garbage"),
			want:  []string{"test.sdf:17", "record 2", "bad counts line"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadSDF(strings.NewReader(tc.input), "test.sdf")
			if err == nil {
				t.Fatal("malformed record parsed without error")
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q does not mention %q", err, w)
				}
			}
		})
	}
}

func TestReadSMILES(t *testing.T) {
	input := `# screen subset
CCO ethanol
c1ccccc1 benzene
CC(=O)O
ClCCBr
C1CC1
[13C]C[C@H](N)C(=O)O alanine-ish
`
	gs, err := ReadSMILES(strings.NewReader(input), "test.smi")
	if err != nil {
		t.Fatal(err)
	}
	type shape struct{ n, m int }
	want := []shape{{3, 2}, {6, 6}, {4, 3}, {4, 3}, {3, 3}, {7, 6}}
	if len(gs) != len(want) {
		t.Fatalf("got %d molecules, want %d", len(gs), len(want))
	}
	for i, w := range want {
		if gs[i].N() != w.n || gs[i].M() != w.m {
			t.Errorf("molecule %d: %d atoms / %d bonds, want %d/%d", i, gs[i].N(), gs[i].M(), w.n, w.m)
		}
	}
	// Benzene must come out aromatic without explicit bond symbols.
	for _, e := range gs[1].Edges() {
		if e.Label != BondAromatic {
			t.Errorf("benzene bond label %d, want aromatic", e.Label)
		}
	}
	// Halogens map to the shared halogen label.
	if gs[3].VLabelAt(0) != AtomHalogen || gs[3].VLabelAt(3) != AtomHalogen {
		t.Error("Cl/Br did not map to AtomHalogen")
	}
}

func TestReadSMILESMalformed(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  []string
	}{
		{"unclosed branch", "CCO\nC(C\n", []string{"test.smi:2", "unclosed branch"}},
		{"unmatched close", "C)C\n", []string{"test.smi:1", "unmatched branch close"}},
		{"unclosed ring", "CCO\nCCO\nC1CC\n", []string{"test.smi:3", "ring bond 1 never closed"}},
		{"unknown element", "[Xe]C\n", []string{"test.smi:1", "unknown atom symbol"}},
		{"unexpected character", "CQC\n", []string{"test.smi:1", `unexpected character "Q"`, "column 2"}},
		{"multi-fragment", "C.C\n", []string{"test.smi:1", "multi-fragment"}},
		{"unterminated bracket", "C[NH\n", []string{"test.smi:1", "unterminated bracket"}},
		{"truncated ring escape", "CC%1\n", []string{"test.smi:1", "truncated %nn"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadSMILES(strings.NewReader(tc.input), "test.smi")
			if err == nil {
				t.Fatal("malformed SMILES parsed without error")
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q does not mention %q", err, w)
				}
			}
		})
	}
}

// TestStreamMatchesGenerate pins the streaming generator to the batch
// generator: same seed, same molecules, element by element.
func TestStreamMatchesGenerate(t *testing.T) {
	cfg := Config{Seed: 42}
	want := Generate(50, cfg)
	st := NewStream(cfg)
	for i, w := range want {
		g, ok := st.Next()
		if !ok {
			t.Fatalf("stream ended at %d", i)
		}
		if graph.Fingerprint([]*graph.Graph{g}) != graph.Fingerprint([]*graph.Graph{w}) {
			t.Fatalf("stream molecule %d differs from Generate", i)
		}
	}
}

// TestSDFReaderStreams checks the reader yields records one at a time
// (io.EOF terminated), the shape BuildStreaming consumes.
func TestSDFReaderStreams(t *testing.T) {
	r := NewSDFReader(strings.NewReader(ethanolRecord+benzeneRecord), "test.sdf")
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("streamed %d records, want 2", n)
	}
}
