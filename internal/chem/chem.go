// Package chem generates the synthetic stand-in for the NCI/NIH AIDS
// antiviral screen dataset used in the paper's experiments (§7). The real
// 44k-compound SD file is not available offline, so this generator builds
// molecule-like labeled graphs with the properties the PIS dynamics depend
// on (see DESIGN.md §6):
//
//   - carbon-dominated vertex labels and single-bond-dominated edge labels,
//     so structures repeat massively across the database and structure-only
//     pruning is weak — the regime the paper stresses;
//   - fused 5/6-ring systems plus chains and branches, mirroring organic
//     skeletons (the paper's molecules average 25 vertices / 27 edges);
//   - a heavy-tailed size distribution reaching beyond 200 vertices like
//     the paper's largest compound (214 vertices / 217 edges).
//
// All generation is deterministic per seed.
package chem

import (
	"math"
	"math/rand"

	"pis/internal/graph"
)

// Atom labels. Distribution is carbon-heavy like the screen data.
const (
	AtomC graph.VLabel = iota
	AtomN
	AtomO
	AtomS
	AtomP
	AtomHalogen
)

// Bond labels. The paper's experiments ignore vertex labels and mutate
// edge labels, so the bond distribution drives distance selectivity.
const (
	BondSingle graph.ELabel = iota
	BondDouble
	BondAromatic
	BondTriple
)

// Config controls generation.
type Config struct {
	// Seed drives all randomness. Same seed, same database.
	Seed int64
	// MeanVertices is the average molecule size (default 25, the paper's).
	MeanVertices int
	// SizeSigma is the lognormal shape parameter for sizes (default 0.45).
	SizeSigma float64
	// MinVertices / MaxVertices clip the size distribution (defaults 8 and
	// 220, matching the paper's 214-vertex maximum).
	MinVertices, MaxVertices int
	// HeteroatomRate is the probability a vertex is not carbon (default 0.15).
	HeteroatomRate float64
	// Weighted attaches numeric weights (bond lengths and atomic masses)
	// for linear-mutation-distance experiments.
	Weighted bool
}

func (c Config) normalized() Config {
	if c.MeanVertices <= 0 {
		c.MeanVertices = 25
	}
	if c.SizeSigma <= 0 {
		c.SizeSigma = 0.45
	}
	if c.MinVertices <= 0 {
		c.MinVertices = 8
	}
	if c.MaxVertices <= 0 {
		c.MaxVertices = 220
	}
	if c.MaxVertices < c.MinVertices {
		c.MaxVertices = c.MinVertices
	}
	if c.HeteroatomRate <= 0 {
		c.HeteroatomRate = 0.15
	}
	return c
}

// Generate builds n molecule-like graphs.
func Generate(n int, cfg Config) []*graph.Graph {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]*graph.Graph, n)
	for i := range out {
		out[i] = generateOne(rng, cfg)
	}
	return out
}

// mol is a molecule under construction.
type mol struct {
	atoms  []graph.VLabel
	deg    []int
	bonds  [][3]int32 // u, v, label
	seen   map[[2]int32]bool
	rng    *rand.Rand
	cfg    Config
	target int
}

func (m *mol) addAtom() int32 {
	l := AtomC
	if m.rng.Float64() < m.cfg.HeteroatomRate {
		switch m.rng.Intn(10) {
		case 0, 1, 2, 3:
			l = AtomO
		case 4, 5, 6:
			l = AtomN
		case 7:
			l = AtomS
		case 8:
			l = AtomP
		default:
			l = AtomHalogen
		}
	}
	m.atoms = append(m.atoms, l)
	m.deg = append(m.deg, 0)
	return int32(len(m.atoms) - 1)
}

func (m *mol) addBond(u, v int32, label graph.ELabel) bool {
	if u == v {
		return false
	}
	a, b := u, v
	if a > b {
		a, b = b, a
	}
	if m.seen[[2]int32{a, b}] {
		return false
	}
	m.seen[[2]int32{a, b}] = true
	m.bonds = append(m.bonds, [3]int32{u, v, int32(label)})
	m.deg[u]++
	m.deg[v]++
	return true
}

// chainBond picks an open-chain bond label: mostly single.
func (m *mol) chainBond() graph.ELabel {
	switch r := m.rng.Intn(100); {
	case r < 80:
		return BondSingle
	case r < 94:
		return BondDouble
	default:
		return BondTriple
	}
}

// attachRing grows a ring, fused on an existing edge when possible,
// otherwise attached at a vertex. Six- and five-rings dominate as in
// organic chemistry; rarer sizes (3, 4, 7) create the uncommon skeletons
// that make some substructure queries highly selective — the real screen
// data has those too (epoxides, beta-lactams, azepines).
func (m *mol) attachRing(anchor int32) {
	var size int
	switch r := m.rng.Intn(20); {
	case r < 11:
		size = 6
	case r < 16:
		size = 5
	case r < 17:
		size = 3
	case r < 18:
		size = 4
	default:
		size = 7
	}
	aromatic := size == 6 && m.rng.Intn(100) < 55 || size == 5 && m.rng.Intn(100) < 15
	bond := func() graph.ELabel {
		if aromatic {
			return BondAromatic
		}
		// Alicyclic rings are mostly single with occasional double bonds.
		if m.rng.Intn(10) == 0 {
			return BondDouble
		}
		return BondSingle
	}
	// Fused: share the anchor and one of its neighbors when degrees allow.
	var shared []int32
	if m.deg[anchor] >= 1 && m.deg[anchor] <= 2 && m.rng.Intn(2) == 0 {
		for _, b := range m.bonds {
			var other int32 = -1
			if b[0] == anchor {
				other = b[1]
			} else if b[1] == anchor {
				other = b[0]
			}
			if other >= 0 && m.deg[other] <= 2 {
				shared = []int32{anchor, other}
				break
			}
		}
	}
	if shared == nil {
		shared = []int32{anchor}
	}
	ring := append([]int32(nil), shared...)
	for len(ring) < size {
		ring = append(ring, m.addAtom())
	}
	for i := 0; i < size; i++ {
		u, v := ring[i], ring[(i+1)%size]
		if len(shared) == 2 && ((u == shared[0] && v == shared[1]) || (u == shared[1] && v == shared[0])) {
			continue // the fused edge already exists
		}
		m.addBond(u, v, bond())
	}
}

// attachChain grows a short open chain from the anchor.
func (m *mol) attachChain(anchor int32) {
	length := 1 + m.rng.Intn(4)
	prev := anchor
	for i := 0; i < length && len(m.atoms) < m.target; i++ {
		nv := m.addAtom()
		m.addBond(prev, nv, m.chainBond())
		prev = nv
	}
}

// openSite returns a random vertex with chemical valence to spare.
func (m *mol) openSite() int32 {
	for tries := 0; tries < 32; tries++ {
		v := int32(m.rng.Intn(len(m.atoms)))
		if m.deg[v] < 4 {
			return v
		}
	}
	// Degenerate: everything saturated; take the last atom regardless.
	return int32(len(m.atoms) - 1)
}

func generateOne(rng *rand.Rand, cfg Config) *graph.Graph {
	target := int(math.Exp(math.Log(float64(cfg.MeanVertices)) - cfg.SizeSigma*cfg.SizeSigma/2 +
		rng.NormFloat64()*cfg.SizeSigma))
	if target < cfg.MinVertices {
		target = cfg.MinVertices
	}
	if target > cfg.MaxVertices {
		target = cfg.MaxVertices
	}
	m := &mol{seen: map[[2]int32]bool{}, rng: rng, cfg: cfg, target: target}

	// Seed unit: usually a ring, sometimes a chain.
	first := m.addAtom()
	if rng.Intn(10) < 7 {
		m.attachRing(first)
	} else {
		m.attachChain(first)
	}
	for len(m.atoms) < target {
		anchor := m.openSite()
		switch r := rng.Intn(10); {
		case r < 4:
			m.attachRing(anchor)
		case r < 9:
			m.attachChain(anchor)
		default: // occasional extra bond closing a larger ring
			u, v := m.openSite(), m.openSite()
			m.addBond(u, v, m.chainBond())
		}
	}

	b := graph.NewBuilder(len(m.atoms), len(m.bonds))
	for i, a := range m.atoms {
		if cfg.Weighted {
			b.AddWeightedVertex(a, atomMass(a)+rng.NormFloat64()*0.05)
		} else {
			b.AddVertex(a)
		}
		_ = i
	}
	for _, bd := range m.bonds {
		if cfg.Weighted {
			b.AddWeightedEdge(bd[0], bd[1], graph.ELabel(bd[2]),
				bondLength(graph.ELabel(bd[2]))+rng.NormFloat64()*0.03)
		} else {
			b.AddEdge(bd[0], bd[1], graph.ELabel(bd[2]))
		}
	}
	return b.MustBuild()
}

// atomMass returns an approximate relative atomic mass for weights.
func atomMass(a graph.VLabel) float64 {
	switch a {
	case AtomC:
		return 12
	case AtomN:
		return 14
	case AtomO:
		return 16
	case AtomS:
		return 32
	case AtomP:
		return 31
	default:
		return 35
	}
}

// bondLength returns a typical bond length in Ångström for weights.
func bondLength(b graph.ELabel) float64 {
	switch b {
	case BondSingle:
		return 1.54
	case BondDouble:
		return 1.34
	case BondAromatic:
		return 1.40
	default:
		return 1.20
	}
}

// SampleQueries draws count connected query graphs of exactly m edges from
// the database, as the paper does ("query graphs are directly sampled from
// the database"). Graphs too small to yield m connected edges are skipped.
func SampleQueries(db []*graph.Graph, count, m int, seed int64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*graph.Graph, 0, count)
	for len(out) < count {
		g := db[rng.Intn(len(db))]
		edges := graph.RandomConnectedSubgraph(g, m, rng.Intn)
		if edges == nil {
			continue
		}
		sub, _, _ := graph.Fragment{Host: g, Edges: edges}.Extract()
		out = append(out, sub)
	}
	return out
}

// Stats summarizes a generated database for reporting.
type Stats struct {
	Graphs      int
	AvgVertices float64
	AvgEdges    float64
	MaxVertices int
	MaxEdges    int
	BondCounts  map[graph.ELabel]int
	AtomCounts  map[graph.VLabel]int
}

// Summarize computes database statistics.
func Summarize(db []*graph.Graph) Stats {
	s := Stats{
		Graphs:     len(db),
		BondCounts: map[graph.ELabel]int{},
		AtomCounts: map[graph.VLabel]int{},
	}
	for _, g := range db {
		s.AvgVertices += float64(g.N())
		s.AvgEdges += float64(g.M())
		if g.N() > s.MaxVertices {
			s.MaxVertices = g.N()
		}
		if g.M() > s.MaxEdges {
			s.MaxEdges = g.M()
		}
		for v := 0; v < g.N(); v++ {
			s.AtomCounts[g.VLabelAt(v)]++
		}
		for _, e := range g.Edges() {
			s.BondCounts[e.Label]++
		}
	}
	if len(db) > 0 {
		s.AvgVertices /= float64(len(db))
		s.AvgEdges /= float64(len(db))
	}
	return s
}
