// SDF (MDL SD file) corpus loader. Parses the V2000 connection table of
// each record into a labeled graph over the package's atom/bond label
// spaces, streaming record by record so a multi-gigabyte screen file can
// feed an out-of-core index build without ever being held in memory.
//
// The parser is deliberately narrow: counts line, atom block (element
// symbol only — coordinates, charges and isotopes are ignored), bond
// block, then everything up to the "$$$$" record delimiter is skipped.
// Explicit hydrogens are stripped (with their bonds), matching how the
// paper's experiments and the synthetic generator treat molecules.
// Every parse error reports the file name, the 1-based line number, and
// the record number, so a bad row in a 100k-record dump is findable.

package chem

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"pis/internal/graph"
)

// atomLabel maps an element symbol to the package's vertex label space;
// ok is false for symbols outside it. Hydrogen is handled by the callers
// (stripped), not here.
func atomLabel(sym string) (graph.VLabel, bool) {
	switch strings.ToUpper(sym) {
	case "C":
		return AtomC, true
	case "N":
		return AtomN, true
	case "O":
		return AtomO, true
	case "S":
		return AtomS, true
	case "P":
		return AtomP, true
	case "F", "CL", "BR", "I":
		return AtomHalogen, true
	}
	return 0, false
}

// bondLabel maps an MDL bond type code to the package's edge labels.
func bondLabel(t int) (graph.ELabel, bool) {
	switch t {
	case 1:
		return BondSingle, true
	case 2:
		return BondDouble, true
	case 3:
		return BondTriple, true
	case 4:
		return BondAromatic, true
	}
	return 0, false
}

// SDFReader decodes one molecule per Next call. Errors carry
// "<name>:<line>: record <n>:" positions.
type SDFReader struct {
	sc     *bufio.Scanner
	name   string
	line   int // 1-based line number of the most recently read line
	record int // 1-based record number of the record being parsed
	done   bool
}

// NewSDFReader reads SD records from r; name labels error positions
// (typically the file path).
func NewSDFReader(r io.Reader, name string) *SDFReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	return &SDFReader{sc: sc, name: name}
}

func (r *SDFReader) next() (string, bool) {
	if !r.sc.Scan() {
		return "", false
	}
	r.line++
	return r.sc.Text(), true
}

func (r *SDFReader) errf(format string, args ...any) error {
	pos := fmt.Sprintf("%s:%d: record %d: ", r.name, r.line, r.record)
	return fmt.Errorf(pos+format, args...)
}

// field extracts the fixed-width column [start, end) of an MDL line,
// falling back to whitespace fields for files with sloppy columns.
func field(line string, start, end, idx int) string {
	if len(line) >= end {
		if f := strings.TrimSpace(line[start:end]); f != "" {
			return f
		}
	}
	fs := strings.Fields(line)
	if idx < len(fs) {
		return fs[idx]
	}
	return ""
}

// Next returns the next molecule, or io.EOF after the last record.
func (r *SDFReader) Next() (*graph.Graph, error) {
	if r.done {
		return nil, io.EOF
	}
	// Skip blank lines between records; EOF here is a clean end.
	var header string
	for {
		ln, ok := r.next()
		if !ok {
			r.done = true
			if err := r.sc.Err(); err != nil {
				return nil, fmt.Errorf("%s:%d: %w", r.name, r.line, err)
			}
			return nil, io.EOF
		}
		if strings.TrimSpace(ln) != "" {
			header = ln
			break
		}
	}
	_ = header // molecule name; unused
	r.record++
	for i := 0; i < 2; i++ { // program + comment header lines
		if _, ok := r.next(); !ok {
			return nil, r.errf("truncated header (file ends inside the three header lines)")
		}
	}
	counts, ok := r.next()
	if !ok {
		return nil, r.errf("missing counts line")
	}
	nAtoms, err1 := strconv.Atoi(field(counts, 0, 3, 0))
	nBonds, err2 := strconv.Atoi(field(counts, 3, 6, 1))
	if err1 != nil || err2 != nil || nAtoms < 0 || nBonds < 0 {
		return nil, r.errf("bad counts line %q", counts)
	}

	// Atom block. keep[i] is the graph vertex of 1-based atom i+1, or -1
	// for a stripped explicit hydrogen.
	b := graph.NewBuilder(nAtoms, nBonds)
	keep := make([]int32, nAtoms)
	for i := 0; i < nAtoms; i++ {
		ln, ok := r.next()
		if !ok {
			return nil, r.errf("truncated atom block (%d of %d atoms)", i, nAtoms)
		}
		sym := field(ln, 31, 34, 3)
		if strings.EqualFold(sym, "H") || strings.EqualFold(sym, "D") || strings.EqualFold(sym, "T") {
			keep[i] = -1
			continue
		}
		l, ok := atomLabel(sym)
		if !ok {
			return nil, r.errf("unknown atom symbol %q", sym)
		}
		keep[i] = b.AddVertex(l)
	}

	// Bond block; bonds touching a stripped hydrogen are dropped.
	for i := 0; i < nBonds; i++ {
		ln, ok := r.next()
		if !ok {
			return nil, r.errf("truncated bond block (%d of %d bonds)", i, nBonds)
		}
		u, err1 := strconv.Atoi(field(ln, 0, 3, 0))
		v, err2 := strconv.Atoi(field(ln, 3, 6, 1))
		t, err3 := strconv.Atoi(field(ln, 6, 9, 2))
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, r.errf("bad bond line %q", ln)
		}
		if u < 1 || u > nAtoms || v < 1 || v > nAtoms || u == v {
			return nil, r.errf("bond %d-%d outside the %d-atom molecule", u, v, nAtoms)
		}
		l, ok := bondLabel(t)
		if !ok {
			return nil, r.errf("unknown bond type %d", t)
		}
		if keep[u-1] < 0 || keep[v-1] < 0 {
			continue
		}
		b.AddEdge(keep[u-1], keep[v-1], l)
	}

	// Skip properties and data fields to the record delimiter. EOF before
	// "$$$$" is tolerated for the final record (many tools omit it).
	for {
		ln, ok := r.next()
		if !ok {
			r.done = true
			break
		}
		if strings.HasPrefix(ln, "$$$$") {
			break
		}
	}

	g, err := b.Build()
	if err != nil {
		return nil, r.errf("%v", err)
	}
	if g.N() == 0 {
		return nil, r.errf("molecule has no heavy atoms")
	}
	return g, nil
}

// ReadSDF parses every record of an SD stream; name labels errors.
func ReadSDF(r io.Reader, name string) ([]*graph.Graph, error) {
	sr := NewSDFReader(r, name)
	var out []*graph.Graph
	for {
		g, err := sr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
}
