package pis_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"pis"
	"pis/gen"
)

// Differential property tests for live mutations: after ANY interleaving
// of Insert/Delete/Compact, a mutated database must answer
// Search/SearchKNN/SearchBatch exactly like a freshly built pis.New over
// the surviving graphs. Ids are compared through the rank mapping — the
// mutated database keeps stable global ids, the fresh database numbers
// the same survivors 0..n-1 in ascending id order — which is a bijection,
// so answer sets, distances, and kNN order must agree entry for entry.

// mutableDB is the mutation + query surface shared by *pis.Database and
// *pis.Sharded.
type mutableDB interface {
	Insert(g *pis.Graph) (int32, error)
	Delete(id int32) (bool, error)
	Compact() error
	Len() int
	Graph(id int32) *pis.Graph
	LiveIDs() []int32
	Search(q *pis.Graph, sigma float64) pis.Result
	SearchKNN(q *pis.Graph, k int, maxSigma float64) []pis.Neighbor
	SearchBatch(queries []*pis.Graph, sigma float64, workers int) []pis.Result
	Stats() pis.IndexStats
}

// mutationModel mirrors the expected database contents by stable id.
type mutationModel struct {
	live map[int32]*pis.Graph
	ever []int32 // every id ever assigned, for delete targeting
}

// applyRandomOp performs one random mutation on db and the model in
// lockstep, asserting the mutation's observable outcome matches.
func applyRandomOp(t *testing.T, rng *rand.Rand, db mutableDB, m *mutationModel, pool []*pis.Graph) {
	t.Helper()
	switch op := rng.Intn(10); {
	case op < 4: // insert
		g := pool[rng.Intn(len(pool))]
		id, err := db.Insert(g)
		if err != nil {
			t.Fatalf("Insert: auto-compaction failed: %v", err)
		}
		if _, dup := m.live[id]; dup {
			t.Fatalf("Insert reused live id %d", id)
		}
		m.live[id] = g
		m.ever = append(m.ever, id)
	case op < 7: // delete a random ever-assigned id (live or not)
		if len(m.live) <= 5 {
			return // keep the database searchable
		}
		id := m.ever[rng.Intn(len(m.ever))]
		_, wasLive := m.live[id]
		got, err := db.Delete(id)
		if err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
		if got != wasLive {
			t.Fatalf("Delete(%d) = %v, model says live=%v", id, got, wasLive)
		}
		delete(m.live, id)
	case op < 8: // delete an id that was never assigned
		if ok, err := db.Delete(int32(len(m.ever) + 100000)); ok || err != nil {
			t.Fatalf("Delete of never-assigned id: %v, %v", ok, err)
		}
	default: // explicit compaction
		if err := db.Compact(); err != nil {
			t.Fatalf("Compact: %v", err)
		}
	}
}

// checkEquivalence asserts db answers exactly like a fresh pis.New over
// the surviving graphs, across Search, SearchKNN, and SearchBatch.
func checkEquivalence(t *testing.T, rng *rand.Rand, db mutableDB, m *mutationModel, opts pis.Options) {
	t.Helper()
	live := db.LiveIDs()
	if len(live) != len(m.live) {
		t.Fatalf("LiveIDs reports %d graphs, model has %d", len(live), len(m.live))
	}
	rank := make(map[int32]int32, len(live))
	survivors := make([]*pis.Graph, len(live))
	for i, id := range live {
		g, ok := m.live[id]
		if !ok {
			t.Fatalf("LiveIDs includes %d, which the model deleted", id)
		}
		// A database recovered from disk holds decoded copies, so fall
		// back to structural equality when pointer identity fails.
		if got := db.Graph(id); got != g && !graphsEqual(t, got, g) {
			t.Fatalf("Graph(%d) returned the wrong graph", id)
		}
		rank[id] = int32(i)
		survivors[i] = g
	}
	if db.Len() != len(live) {
		t.Fatalf("Len() = %d, want %d live graphs", db.Len(), len(live))
	}

	fresh, err := pis.New(survivors, opts)
	if err != nil {
		t.Fatalf("fresh build over %d survivors: %v", len(survivors), err)
	}
	queries := gen.Queries(survivors, 3, 6, rng.Int63())

	for qi, q := range queries {
		for _, sigma := range []float64{0, 2} {
			got := db.Search(q, sigma)
			want := fresh.Search(q, sigma)
			compareAnswers(t, fmt.Sprintf("Search q%d σ=%g", qi, sigma), got, want, rank)
		}
		gotN := db.SearchKNN(q, 4, 6)
		wantN := fresh.SearchKNN(q, 4, 6)
		if len(gotN) != len(wantN) {
			t.Fatalf("SearchKNN q%d: %d neighbors, want %d", qi, len(gotN), len(wantN))
		}
		for i := range gotN {
			if rank[gotN[i].ID] != wantN[i].ID || gotN[i].Distance != wantN[i].Distance {
				t.Fatalf("SearchKNN q%d neighbor %d: (%d→%d, %g), want (%d, %g)",
					qi, i, gotN[i].ID, rank[gotN[i].ID], gotN[i].Distance, wantN[i].ID, wantN[i].Distance)
			}
		}
	}

	gotB := db.SearchBatch(queries, 1.5, 2)
	wantB := fresh.SearchBatch(queries, 1.5, 2)
	for i := range queries {
		compareAnswers(t, fmt.Sprintf("SearchBatch q%d", i), gotB[i], wantB[i], rank)
	}
}

// graphsEqual compares two graphs through the transaction codec, which
// renders every observable field.
func graphsEqual(t *testing.T, a, b *pis.Graph) bool {
	t.Helper()
	if a == nil || b == nil {
		return a == b
	}
	var ab, bb bytes.Buffer
	if err := pis.WriteDatabase(&ab, []*pis.Graph{a}); err != nil {
		t.Fatal(err)
	}
	if err := pis.WriteDatabase(&bb, []*pis.Graph{b}); err != nil {
		t.Fatal(err)
	}
	return ab.String() == bb.String()
}

// compareAnswers asserts got (stable ids) equals want (fresh dense ids)
// under the rank bijection, including exact distances.
func compareAnswers(t *testing.T, ctx string, got, want pis.Result, rank map[int32]int32) {
	t.Helper()
	if len(got.Answers) != len(want.Answers) {
		t.Fatalf("%s: %d answers %v, want %d %v", ctx, len(got.Answers), got.Answers, len(want.Answers), want.Answers)
	}
	for i, id := range got.Answers {
		r, ok := rank[id]
		if !ok {
			t.Fatalf("%s: answer id %d is not live", ctx, id)
		}
		if r != want.Answers[i] {
			t.Fatalf("%s: answer %d is id %d (rank %d), want rank %d", ctx, i, id, r, want.Answers[i])
		}
		if got.Distances[i] != want.Distances[i] {
			t.Fatalf("%s: distance %d = %g, want %g", ctx, i, got.Distances[i], want.Distances[i])
		}
	}
}

// runMutationDifferential drives one randomized Insert/Delete/Compact
// interleaving against db, checking full-equivalence snapshots along the
// way.
func runMutationDifferential(t *testing.T, seed int64, db mutableDB, initial []*pis.Graph, opts pis.Options) {
	rng := rand.New(rand.NewSource(seed))
	pool := gen.Molecules(30, gen.Config{Seed: seed + 1000})
	m := &mutationModel{live: make(map[int32]*pis.Graph)}
	for i, g := range initial {
		m.live[int32(i)] = g
		m.ever = append(m.ever, int32(i))
	}
	for step := 0; step < 30; step++ {
		applyRandomOp(t, rng, db, m, pool)
		if step%10 == 9 {
			checkEquivalence(t, rng, db, m, opts)
		}
	}
	// Final state, after one last explicit compaction: the folded index
	// must still answer identically.
	if err := db.Compact(); err != nil {
		t.Fatalf("final Compact: %v", err)
	}
	if st := db.Stats(); st.Delta != 0 || st.Tombstones != 0 {
		t.Fatalf("after Compact: delta=%d tombstones=%d, want 0/0", st.Delta, st.Tombstones)
	}
	checkEquivalence(t, rng, db, m, opts)
}

// TestMutationDifferentialUnsharded runs the interleaving property on the
// single-segment database, both with automatic compaction and with the
// pure delta+tombstone path (compaction disabled).
func TestMutationDifferentialUnsharded(t *testing.T) {
	for _, cf := range []float64{0, -1} { // 0 → default 0.25, -1 → disabled
		for seed := int64(0); seed < 2; seed++ {
			opts := pis.Options{MaxFragmentEdges: 4, CompactFraction: cf}
			initial := gen.Molecules(25, gen.Config{Seed: 50 + seed})
			db, err := pis.New(initial, opts)
			if err != nil {
				t.Fatal(err)
			}
			runMutationDifferential(t, 300+seed, db, initial, opts)
		}
	}
}

// TestMutationDifferentialSharded runs the same property on sharded
// databases, where inserts are routed to the smallest shard and
// compaction runs per shard.
func TestMutationDifferentialSharded(t *testing.T) {
	for _, nShards := range []int{2, 3} {
		for _, cf := range []float64{0, -1} {
			opts := pis.Options{MaxFragmentEdges: 4, CompactFraction: cf}
			initial := gen.Molecules(30, gen.Config{Seed: 77})
			db, err := pis.NewSharded(initial, nShards, opts)
			if err != nil {
				t.Fatal(err)
			}
			runMutationDifferential(t, 400+int64(nShards), db, initial, opts)
		}
	}
}

// TestInsertRoutedToSmallestShard: inserts land in the shard with the
// fewest live graphs, keeping shards balanced as the database grows.
func TestInsertRoutedToSmallestShard(t *testing.T) {
	initial := gen.Molecules(30, gen.Config{Seed: 91})
	db, err := pis.NewSharded(initial, 3, pis.Options{MaxFragmentEdges: 4, CompactFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Empty out shard coverage asymmetrically: delete 8 of the first
	// shard's graphs (ids 0..9 live in shard 0).
	for id := int32(0); id < 8; id++ {
		if ok, err := db.Delete(id); !ok || err != nil {
			t.Fatalf("Delete failed: %v, %v", ok, err)
		}
	}
	pool := gen.Molecules(6, gen.Config{Seed: 92})
	var newIDs []int32
	for _, g := range pool {
		id, err := db.Insert(g)
		if err != nil {
			t.Fatal(err)
		}
		newIDs = append(newIDs, id)
	}
	// All six land in the depleted shard 0 (2 live + 6 = 8, still the
	// smallest), observable through shard-0 deletes succeeding and the
	// graphs being searchable.
	for i, id := range newIDs {
		if db.Graph(id) != pool[i] {
			t.Fatalf("inserted graph %d not retrievable", id)
		}
	}
	if got := db.Len(); got != 30-8+6 {
		t.Fatalf("Len = %d, want 28", got)
	}
}

// TestAutoCompactionTriggers: with a small CompactFraction, inserts fold
// the delta into the index without an explicit Compact call.
func TestAutoCompactionTriggers(t *testing.T) {
	initial := gen.Molecules(20, gen.Config{Seed: 95})
	db, err := pis.New(initial, pis.Options{MaxFragmentEdges: 4, CompactFraction: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	pool := gen.Molecules(10, gen.Config{Seed: 96})
	sawDelta := false
	for _, g := range pool {
		if _, err := db.Insert(g); err != nil {
			t.Fatal(err)
		}
		st := db.Stats()
		if st.Delta > 0 {
			sawDelta = true
		}
		// 20 graphs * 0.2 = 4: the delta may never exceed the trigger.
		if st.Delta > 5 {
			t.Fatalf("delta %d never compacted", st.Delta)
		}
	}
	if !sawDelta {
		t.Fatal("inserts never hit the delta segment")
	}
	if db.Len() != 30 {
		t.Fatalf("Len = %d, want 30", db.Len())
	}
}
