package pis_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pis"
	"pis/gen"
)

// Planner differential property tests at the public API: a database
// searched with the cost-based planner (the default) must answer Search
// and SearchKNN exactly like one running exhaustive fragment expansion
// (PlannerOff), across shardings, planner knob settings, and live
// mutation interleavings. Both databases see the identical mutation
// sequence, so global ids agree and results compare entry for entry.

func plannerOptionPairs() []pis.Options {
	base := pis.Options{MaxFragmentEdges: 4, CompactFraction: -1}
	variants := []pis.Options{base}
	tuned := base
	tuned.PlannerBudget = 4
	tuned.PlannerCrossover = 2
	variants = append(variants, tuned)
	aggressive := base
	aggressive.PlannerBudget = 1e9 // skip every range query
	variants = append(variants, aggressive)
	return variants
}

type plannerPair struct {
	planned, exhaustive mutableDB
}

func comparePlanned(t *testing.T, label string, pair plannerPair, queries []*pis.Graph) {
	t.Helper()
	for qi, q := range queries {
		for _, sigma := range []float64{0, 1, 2.5} {
			got := pair.planned.Search(q, sigma)
			want := pair.exhaustive.Search(q, sigma)
			if len(got.Answers) != len(want.Answers) {
				t.Fatalf("%s q%d σ=%g: planner found %d answers, exhaustive %d",
					label, qi, sigma, len(got.Answers), len(want.Answers))
			}
			for i := range want.Answers {
				if got.Answers[i] != want.Answers[i] || got.Distances[i] != want.Distances[i] {
					t.Fatalf("%s q%d σ=%g: answer %d differs: (%d, %g) vs (%d, %g)", label, qi, sigma,
						i, got.Answers[i], got.Distances[i], want.Answers[i], want.Distances[i])
				}
			}
		}
		gotN := pair.planned.SearchKNN(q, 3, 5)
		wantN := pair.exhaustive.SearchKNN(q, 3, 5)
		if len(gotN) != len(wantN) {
			t.Fatalf("%s q%d: planner kNN %d neighbors, exhaustive %d", label, qi, len(gotN), len(wantN))
		}
		for i := range wantN {
			if gotN[i] != wantN[i] {
				t.Fatalf("%s q%d: kNN neighbor %d differs: %+v vs %+v", label, qi, i, gotN[i], wantN[i])
			}
		}
	}
}

// TestPlannerDifferentialMutations interleaves identical
// Insert/Delete/Compact sequences into a planner-enabled and an
// exhaustive database (unsharded and sharded) and checks equivalence
// after every few operations.
func TestPlannerDifferentialMutations(t *testing.T) {
	for _, nShards := range []int{0, 3} { // 0 = unsharded
		for oi, opts := range plannerOptionPairs() {
			name := fmt.Sprintf("shards=%d/opts=%d", nShards, oi)
			t.Run(name, func(t *testing.T) {
				exOpts := opts
				exOpts.PlannerOff = true
				exOpts.PlannerBudget = 0
				exOpts.PlannerCrossover = 0
				initial := gen.Molecules(28, gen.Config{Seed: 600 + int64(oi)})
				var pair plannerPair
				var err error
				if nShards == 0 {
					if pair.planned, err = pis.New(initial, opts); err != nil {
						t.Fatal(err)
					}
					if pair.exhaustive, err = pis.New(initial, exOpts); err != nil {
						t.Fatal(err)
					}
				} else {
					if pair.planned, err = pis.NewSharded(initial, nShards, opts); err != nil {
						t.Fatal(err)
					}
					if pair.exhaustive, err = pis.NewSharded(initial, nShards, exOpts); err != nil {
						t.Fatal(err)
					}
				}
				rng := rand.New(rand.NewSource(700 + int64(oi)))
				pool := gen.Molecules(12, gen.Config{Seed: 800 + int64(oi)})
				live := append([]int32(nil), pair.planned.LiveIDs()...)
				nextDelete := 0
				for step := 0; step < 24; step++ {
					switch rng.Intn(4) {
					case 0: // insert the same graph into both
						g := pool[rng.Intn(len(pool))]
						idP, err := pair.planned.Insert(g)
						if err != nil {
							t.Fatal(err)
						}
						idE, err := pair.exhaustive.Insert(g)
						if err != nil {
							t.Fatal(err)
						}
						if idP != idE {
							t.Fatalf("step %d: insert ids diverged: %d vs %d", step, idP, idE)
						}
						live = append(live, idP)
					case 1: // delete the same live graph from both
						if len(live) <= nextDelete+6 {
							continue
						}
						id := live[nextDelete]
						nextDelete++
						okP, err := pair.planned.Delete(id)
						if err != nil {
							t.Fatal(err)
						}
						okE, err := pair.exhaustive.Delete(id)
						if err != nil {
							t.Fatal(err)
						}
						if okP != okE {
							t.Fatalf("step %d: Delete(%d) diverged: %v vs %v", step, id, okP, okE)
						}
					case 2: // compact both
						if err := pair.planned.Compact(); err != nil {
							t.Fatal(err)
						}
						if err := pair.exhaustive.Compact(); err != nil {
							t.Fatal(err)
						}
					}
					if step%6 == 5 {
						queries := gen.Queries(initial, 2, 5, rng.Int63())
						comparePlanned(t, name, pair, queries)
					}
				}
				queries := gen.Queries(initial, 4, 6, rng.Int63())
				comparePlanned(t, name, pair, queries)
			})
		}
	}
}
