// Command pisquery loads a graph database and runs one SSSD query against
// it, printing the matching graph ids and the per-stage statistics.
//
// Usage:
//
//	pisquery -db screen.db -query q.db -sigma 2
//	pisquery -db screen.db -query q.db -sigma 2 -method toposearch
//	pisquery -db screen.db -sample 16 -sigma 1   # sample a 16-edge query
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pis"
	"pis/gen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pisquery: ")
	var (
		dbPath  = flag.String("db", "", "database file (transaction format, required)")
		qPath   = flag.String("query", "", "query file; the first graph is the query")
		sample  = flag.Int("sample", 0, "instead of -query, sample a query with this many edges")
		sigma   = flag.Float64("sigma", 1, "maximum superimposed distance σ")
		method  = flag.String("method", "pis", "search method: pis, toposearch, naive")
		maxFrag = flag.Int("maxfrag", 5, "maximum indexed fragment size (edges)")
		seed    = flag.Int64("seed", 1, "seed for -sample")
		verbose = flag.Bool("v", false, "print the query graph")
	)
	flag.Parse()
	if *dbPath == "" {
		log.Fatal("-db is required")
	}
	if (*qPath == "") == (*sample == 0) {
		log.Fatal("exactly one of -query or -sample is required")
	}

	dbFile, err := os.Open(*dbPath)
	if err != nil {
		log.Fatal(err)
	}
	graphs, err := pis.ReadDatabase(dbFile)
	dbFile.Close()
	if err != nil {
		log.Fatalf("reading database: %v", err)
	}

	var q *pis.Graph
	if *qPath != "" {
		qf, err := os.Open(*qPath)
		if err != nil {
			log.Fatal(err)
		}
		qs, err := pis.ReadDatabase(qf)
		qf.Close()
		if err != nil || len(qs) == 0 {
			log.Fatalf("reading query: %v", err)
		}
		q = qs[0]
	} else {
		q = gen.Queries(graphs, 1, *sample, *seed)[0]
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "query: %v\n", q)
	}

	db, err := pis.New(graphs, pis.Options{MaxFragmentEdges: *maxFrag})
	if err != nil {
		log.Fatal(err)
	}

	var r pis.Result
	switch *method {
	case "pis":
		r = db.Search(q, *sigma)
	case "toposearch", "topo", "toposprune", "topoprune":
		r = db.SearchTopoPrune(q, *sigma)
	case "naive":
		r = db.SearchNaive(q, *sigma)
	default:
		log.Fatalf("unknown method %q", *method)
	}

	fmt.Printf("answers (%d): %v\n", len(r.Answers), r.Answers)
	st := r.Stats
	fmt.Printf("fragments: %d indexed, %d used, partition size %d\n",
		st.QueryFragments, st.UsedFragments, st.PartitionSize)
	fmt.Printf("candidates: %d structural, %d after distance pruning, %d verified\n",
		st.StructCandidates, st.DistCandidates, st.Verified)
	fmt.Printf("time: filter %v, verify %v\n", st.FilterTime, st.VerifyTime)
}
