// Command pisquery loads a graph database and runs one SSSD query against
// it, printing the matching graph ids and the per-stage statistics. With
// -serve-addr it sends the query to a running pisserved over HTTP instead
// of building a local index.
//
// Usage:
//
//	pisquery -db screen.db -query q.db -sigma 2
//	pisquery -db screen.db -query q.db -sigma 2 -method toposearch
//	pisquery -db screen.db -sample 16 -sigma 1   # sample a 16-edge query
//	pisquery -db screen.db -sample 16 -sigma 1 -serve-addr http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"pis"
	"pis/gen"
	"pis/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pisquery: ")
	var (
		dbPath  = flag.String("db", "", "database file (transaction format, required)")
		qPath   = flag.String("query", "", "query file; the first graph is the query")
		sample  = flag.Int("sample", 0, "instead of -query, sample a query with this many edges")
		sigma   = flag.Float64("sigma", 1, "maximum superimposed distance σ")
		method  = flag.String("method", "pis", "search method: pis, toposearch, naive")
		maxFrag = flag.Int("maxfrag", 5, "maximum indexed fragment size (edges)")
		seed    = flag.Int64("seed", 1, "seed for -sample")
		verbose = flag.Bool("v", false, "print the query graph")
		remote  = flag.String("serve-addr", "", "base URL of a running pisserved; query it instead of building a local index")
	)
	flag.Parse()
	if (*qPath == "") == (*sample == 0) {
		log.Fatal("exactly one of -query or -sample is required")
	}
	if *remote != "" && *method != "pis" {
		log.Fatalf("-method %s cannot be combined with -serve-addr: the server always runs the PIS pipeline", *method)
	}
	// The local database is needed to sample a query or to build a local
	// index; a remote -query run needs neither.
	needDB := *remote == "" || *sample != 0
	if needDB && *dbPath == "" {
		log.Fatal("-db is required")
	}

	var graphs []*pis.Graph
	if needDB {
		dbFile, err := os.Open(*dbPath)
		if err != nil {
			log.Fatal(err)
		}
		graphs, err = pis.ReadDatabase(dbFile)
		dbFile.Close()
		if err != nil {
			log.Fatalf("reading database: %v", err)
		}
	}

	var q *pis.Graph
	if *qPath != "" {
		qf, err := os.Open(*qPath)
		if err != nil {
			log.Fatal(err)
		}
		qs, err := pis.ReadDatabase(qf)
		qf.Close()
		if err != nil || len(qs) == 0 {
			log.Fatalf("reading query: %v", err)
		}
		q = qs[0]
	} else {
		q = gen.Queries(graphs, 1, *sample, *seed)[0]
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "query: %v\n", q)
	}

	if *remote != "" {
		if err := queryRemote(*remote, q, *sigma); err != nil {
			log.Fatal(err)
		}
		return
	}

	db, err := pis.New(graphs, pis.Options{MaxFragmentEdges: *maxFrag})
	if err != nil {
		log.Fatal(err)
	}

	var r pis.Result
	switch *method {
	case "pis":
		r = db.Search(q, *sigma)
	case "toposearch", "topo", "toposprune", "topoprune":
		r = db.SearchTopoPrune(q, *sigma)
	case "naive":
		r = db.SearchNaive(q, *sigma)
	default:
		log.Fatalf("unknown method %q", *method)
	}

	fmt.Printf("answers (%d): %v\n", len(r.Answers), r.Answers)
	st := r.Stats
	fmt.Printf("fragments: %d indexed, %d used, %d expanded, partition size %d\n",
		st.QueryFragments, st.UsedFragments, st.ExpandedFragments, st.PartitionSize)
	fmt.Printf("candidates: %d structural, %d in σ range, %d after partition pruning, %d verified\n",
		st.StructCandidates, st.RangeCandidates, st.DistCandidates, st.Verified)
	fmt.Printf("time: filter %v (of which planning %v), verify %v\n", st.FilterTime, st.PlanTime, st.VerifyTime)
}

// queryRemote posts the query to a pisserved /search endpoint and prints
// the response in the local output shape.
func queryRemote(base string, q *pis.Graph, sigma float64) error {
	body, err := json.Marshal(server.SearchRequest{Query: server.EncodeGraph(q), Sigma: sigma})
	if err != nil {
		return err
	}
	url := strings.TrimRight(base, "/") + "/search"
	client := &http.Client{Timeout: 5 * time.Minute}
	httpResp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("querying %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 4096))
		return fmt.Errorf("%s returned %s: %s", url, httpResp.Status, bytes.TrimSpace(msg))
	}
	var resp server.SearchResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	fmt.Printf("answers (%d): %v\n", len(resp.Answers), resp.Answers)
	st := resp.Stats
	fmt.Printf("fragments: %d indexed, %d used, %d expanded, partition size %d\n",
		st.QueryFragments, st.UsedFragments, st.ExpandedFragments, st.PartitionSize)
	fmt.Printf("candidates: %d structural, %d in σ range, %d after partition pruning, %d verified\n",
		st.StructCandidates, st.RangeCandidates, st.DistCandidates, st.Verified)
	fmt.Printf("time: server %.2fms (filter %.2fms of which planning %.2fms, verify %.2fms), cached %v\n",
		resp.ElapsedMS, st.FilterMS, st.PlanMS, st.VerifyMS, resp.Cached)
	return nil
}
