// Command pisbench regenerates the evaluation figures of the PIS paper
// (ICDE'06 §7) on the synthetic screen database: Figures 8-12 plus the
// filter-timing claim. See EXPERIMENTS.md for paper-vs-measured notes.
//
// Usage:
//
//	pisbench                     # all figures at the default scale
//	pisbench -figure 9           # one figure
//	pisbench -n 10000 -queries 1000   # paper scale (slower)
//
// Out-of-core mode (-large) skips the figures and instead streams the
// database through index.BuildStreaming into a v3 file, opens it
// memory-mapped, and measures the standard workload against the mapped
// index — the configuration for databases that do not fit in RAM:
//
//	pisbench -large -n 100000 -queries 50 -json BENCH_pis_100k.json
//	pisbench -large -corpus screen.sdf -json BENCH_corpus.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"pis/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pisbench: ")
	var (
		figure  = flag.String("figure", "all", "figure to regenerate: 8, 9, 10, 11, 12, timing, all")
		n       = flag.Int("n", 2000, "database size (paper: 10000)")
		queries = flag.Int("queries", 200, "queries per query set")
		seed    = flag.Int64("seed", 1, "seed for generation and sampling")
		maxFrag = flag.Int("maxfrag", 5, "max indexed fragment size for figures 8-11")
		support = flag.Float64("minsupport", 0, "feature mining min support fraction (0 = default 0.05); lower mines more features")
		jsonOut = flag.String("json", "BENCH_pis.json", "write a machine-readable benchmark report to this file (\"\" disables)")
		qEdges  = flag.Int("bench-edges", 16, "query size (edges) for the JSON report workload")
		bSigma  = flag.Float64("bench-sigma", 2, "σ for the JSON report workload")

		large    = flag.Bool("large", false, "out-of-core mode: streaming build to a v3 file, measure against the mapped index (skips the figures)")
		corpus   = flag.String("corpus", "", "with -large: index this SDF/SMILES file instead of -n synthetic molecules")
		arenaMB  = flag.Int("arena-mb", 0, "with -large: in-heap record arena budget in MiB for the external sort (0 = default)")
		memMB    = flag.Int("build-memlimit-mb", 0, "with -large: Go soft memory limit in MiB during the streaming build only (0 = none)")
		indexOut = flag.String("index-out", "", "with -large: keep the built .pisidx3 file at this path (default: temp file)")
	)
	flag.Parse()

	cfg := harness.Config{DBSize: *n, Seed: *seed, Queries: *queries, MaxFragmentEdges: *maxFrag,
		MinSupportFraction: *support}
	if *large {
		start := time.Now()
		rep, err := harness.MeasureLarge(cfg, *qEdges, *bSigma, harness.LargeOptions{
			Corpus:             *corpus,
			ArenaBytes:         *arenaMB << 20,
			IndexPath:          *indexOut,
			BuildMemLimitBytes: int64(*memMB) << 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "out-of-core run: %d graphs in %v\n", rep.DBSize, time.Since(start))
		fmt.Fprintf(os.Stderr, "streaming build: %.0f ms, peak RSS %.1f MiB vs %.1f MiB raw postings (%d spill runs, %.1f MiB spilled)\n",
			rep.BuildMS, rep.BuildPeakRSSMB, float64(rep.RawPostingBytes)/(1<<20),
			rep.StreamSpillRuns, float64(rep.StreamSpillBytes)/(1<<20))
		fmt.Fprintf(os.Stderr, "index open: mapped %.1f ms vs heap %.1f ms (%d bytes on disk)\n",
			rep.IndexOpenMSMapped, rep.IndexOpenMSHeap, rep.IndexBytes)
		fmt.Fprintf(os.Stderr, "mapped queries: %.1f q/s over %d queries, avg %.1f answers\n",
			rep.QueriesPerSec, rep.Queries, rep.AvgAnswers)
		if *jsonOut != "" {
			writeReport(rep, *jsonOut)
		}
		return
	}
	want := func(f string) bool { return *figure == "all" || *figure == f }

	var env *harness.Env
	buildEnv := func() *harness.Env {
		if env == nil {
			start := time.Now()
			var err error
			env, err = harness.BuildEnv(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "built environment: %d graphs, %d features, %v\n",
				cfg.DBSize, len(env.Features), time.Since(start))
		}
		return env
	}

	printed := false
	sep := func() {
		if printed {
			fmt.Println(strings.Repeat("=", 60))
		}
		printed = true
	}

	if want("8") {
		sep()
		harness.Figure8(buildEnv()).Render(os.Stdout)
	}
	if want("9") {
		sep()
		harness.Figure9(buildEnv()).Render(os.Stdout)
	}
	if want("10") {
		sep()
		harness.Figure10(buildEnv()).Render(os.Stdout)
	}
	if want("11") {
		sep()
		harness.Figure11(buildEnv()).Render(os.Stdout)
	}
	if want("12") {
		sep()
		f, err := harness.Figure12(cfg)
		if err != nil {
			log.Fatal(err)
		}
		f.Render(os.Stdout)
	}
	if want("timing") {
		sep()
		avg, expanded, usable, qn := harness.FilterTiming(buildEnv(), 16, 2)
		fmt.Printf("PIS filter stage: avg %v per query over %d Q16 queries (σ=2)\n", avg, qn)
		fmt.Printf("query planner: avg %.1f of %.1f usable fragments expanded per query\n", expanded, usable)
		fmt.Println("paper claim: pruning takes < 1 s per query on 2.5 GHz Xeon, 10k graphs")
	}
	if !printed {
		log.Fatalf("unknown figure %q", *figure)
	}

	if *jsonOut != "" {
		// Reuse the environment the figures built. Figure 12 builds its
		// own sweep environments, so a figure-12-only run has none; don't
		// double the runtime just for the report.
		if env == nil && *figure == "12" {
			fmt.Fprintf(os.Stderr, "skipping %s: -figure 12 builds no shared environment (run another figure to emit it)\n", *jsonOut)
			return
		}
		writeReport(harness.Measure(buildEnv(), *qEdges, *bSigma), *jsonOut)
	}
}

func writeReport(rep harness.BenchReport, path string) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("writing %s: %v", path, err)
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		log.Fatalf("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("writing %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d queries, %.1f q/s)\n", path, rep.Queries, rep.QueriesPerSec)
	fmt.Fprintf(os.Stderr, "stage latency ms  p50/p95/p99  plan %.3f/%.3f/%.3f  filter %.3f/%.3f/%.3f  verify %.3f/%.3f/%.3f\n",
		rep.PlanQuantiles.P50, rep.PlanQuantiles.P95, rep.PlanQuantiles.P99,
		rep.FilterQuantiles.P50, rep.FilterQuantiles.P95, rep.FilterQuantiles.P99,
		rep.VerifyQuantiles.P50, rep.VerifyQuantiles.P95, rep.VerifyQuantiles.P99)
}
