// Command pisgen generates a synthetic molecule database in the
// transaction format and prints its summary statistics.
//
// Usage:
//
//	pisgen -n 10000 -seed 1 -o screen.db
//	pisgen -n 500 -weighted -o weighted.db
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pis"
	"pis/gen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pisgen: ")
	var (
		n        = flag.Int("n", 10000, "number of graphs to generate")
		seed     = flag.Int64("seed", 1, "generator seed")
		weighted = flag.Bool("weighted", false, "attach weights for linear-distance experiments")
		mean     = flag.Int("mean", 25, "mean vertices per graph")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	db := gen.Molecules(*n, gen.Config{Seed: *seed, Weighted: *weighted, MeanVertices: *mean})
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := pis.WriteDatabase(w, db); err != nil {
		log.Fatal(err)
	}
	s := gen.Summarize(db)
	fmt.Fprintf(os.Stderr, "generated %d graphs: avg %.1f vertices / %.1f edges, max %d/%d\n",
		s.Graphs, s.AvgVertices, s.AvgEdges, s.MaxVertices, s.MaxEdges)
}
