// Command benchgate compares a freshly measured pisbench report against
// the committed BENCH_pis.json baseline and fails on performance
// regression, giving CI teeth: a change that slows the query pipeline
// or re-inflates its allocation profile fails the build instead of
// landing silently.
//
// Five metrics are gated, each with a relative tolerance (default 20%,
// wide enough to absorb shared-runner noise):
//
//   - queries_per_sec   must not drop below baseline × (1 - tolerance)
//   - avg_filter_ms     must not rise above baseline × (1 + tolerance)
//   - avg_verify_ms     likewise — a filter that passes junk candidates
//     shows up here even when the filter itself got faster
//   - verify_time_share likewise, catching a drift in the filter/verify
//     balance that the absolute numbers absorb on a fast runner
//   - avg_allocs_per_query (machine-independent) likewise
//   - avg_prescreen_rejects must not drop below baseline × (1 - tolerance):
//     a fingerprint regression that stops refuting candidates pushes them
//     all back into branch-and-bound
//   - verify_cache_hit_rate likewise, measured on the warm pass — a broken
//     cache key or over-eager invalidation shows up here first
//
// Three out-of-core metrics are gated the same way when present:
// peak_rss_mb and index_open_ms_mapped must not rise, queries_per_sec
// already covers mapped throughput (a BENCH file measured with -large
// runs its query loop against the mapped index).
//
// Metrics skip automatically against a baseline that predates them
// (value 0 or absent), so the gate stays usable across transitions.
//
// Improvements never fail the gate; benchgate prints a hint to refresh
// the baseline when the current report is clearly better. To accept an
// intentional change, regenerate the report with pisbench and commit it:
//
//	go run ./cmd/pisbench -figure timing -n 600 -queries 60 -json BENCH_pis.json
//
// -check validates a single out-of-core report against the absolute
// invariants of the streaming build (no baseline involved): answers
// non-empty, positive mapped throughput, and build peak RSS under 50%
// of the raw posting volume the build avoided holding in heap.
//
// Usage:
//
//	benchgate -baseline BENCH_pis.json -current /tmp/BENCH_new.json [-tolerance 0.2]
//	benchgate -check BENCH_pis_100k.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"pis/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	var (
		baselinePath = flag.String("baseline", "BENCH_pis.json", "committed baseline report")
		currentPath  = flag.String("current", "", "freshly measured report (required)")
		tolerance    = flag.Float64("tolerance", 0.2, "relative regression tolerance (0.2 = 20%)")
		checkPath    = flag.String("check", "", "validate this out-of-core report against absolute invariants instead of a baseline")
	)
	flag.Parse()
	if *checkPath != "" {
		check(read(*checkPath))
		return
	}
	if *currentPath == "" {
		log.Fatal("-current is required")
	}
	if *tolerance < 0 {
		log.Fatal("-tolerance must be >= 0")
	}
	baseline := read(*baselinePath)
	current := read(*currentPath)

	type gate struct {
		name           string
		base, cur      float64
		higherIsBetter bool
	}
	gates := []gate{
		{"queries_per_sec", baseline.QueriesPerSec, current.QueriesPerSec, true},
		{"avg_filter_ms", baseline.AvgFilterMS, current.AvgFilterMS, false},
		{"avg_verify_ms", baseline.AvgVerifyMS, current.AvgVerifyMS, false},
		{"verify_time_share", baseline.VerifyTimeShare, current.VerifyTimeShare, false},
		{"avg_allocs_per_query", baseline.AvgAllocsPerQuery, current.AvgAllocsPerQuery, false},
		{"avg_prescreen_rejects", baseline.AvgPrescreenRejects, current.AvgPrescreenRejects, true},
		{"verify_cache_hit_rate", baseline.VerifyCacheHitRate, current.VerifyCacheHitRate, true},
		{"peak_rss_mb", baseline.PeakRSSMB, current.PeakRSSMB, false},
		{"index_open_ms_mapped", baseline.IndexOpenMSMapped, current.IndexOpenMSMapped, false},
	}

	failed, improved := false, false
	fmt.Printf("%-22s  %12s  %12s  %8s  %s\n", "metric", "baseline", "current", "delta", "verdict")
	for _, g := range gates {
		if g.base <= 0 {
			fmt.Printf("%-22s  %12.3f  %12.3f  %8s  skip (no baseline)\n", g.name, g.base, g.cur, "-")
			continue
		}
		delta := (g.cur - g.base) / g.base
		regressed := delta < -*tolerance
		better := delta > 0
		if !g.higherIsBetter {
			regressed = delta > *tolerance
			better = delta < 0
		}
		verdict := "ok"
		switch {
		case regressed:
			verdict = "REGRESSION"
			failed = true
		case better:
			verdict = "improved"
			improved = true
		}
		fmt.Printf("%-22s  %12.3f  %12.3f  %+7.1f%%  %s\n", g.name, g.base, g.cur, delta*100, verdict)
	}
	switch {
	case failed:
		fmt.Printf("\nFAIL: regression beyond the %.0f%% tolerance.\n", *tolerance*100)
		fmt.Println("If intentional, refresh the baseline: go run ./cmd/pisbench -figure timing -n 600 -queries 60 -json BENCH_pis.json and commit it.")
		os.Exit(1)
	case improved:
		fmt.Println("\nPASS — current report beats the baseline; consider committing it as the new baseline.")
	default:
		fmt.Println("\nPASS")
	}
}

// check enforces the absolute invariants of an out-of-core report: the
// mapped index must actually answer queries, and the streaming build's
// working set must stay under half the posting volume it sorted.
func check(rep harness.BenchReport) {
	fail := false
	assert := func(ok bool, format string, args ...any) {
		verdict := "ok"
		if !ok {
			verdict = "FAIL"
			fail = true
		}
		fmt.Printf("%-4s  %s\n", verdict, fmt.Sprintf(format, args...))
	}
	assert(rep.DBSize > 0, "db_size %d > 0", rep.DBSize)
	assert(rep.RawPostingBytes > 0, "raw_posting_bytes %d > 0 (report came from a -large run)", rep.RawPostingBytes)
	assert(rep.AvgAnswers > 0, "avg_answers %.2f > 0 (mapped queries find answers)", rep.AvgAnswers)
	assert(rep.QueriesPerSec > 0, "queries_per_sec %.2f > 0", rep.QueriesPerSec)
	assert(rep.IndexOpenMSMapped > 0, "index_open_ms_mapped %.2f > 0", rep.IndexOpenMSMapped)
	// The RSS budget is only meaningful when the posting volume dwarfs a
	// Go process's fixed footprint (runtime, code, GC headroom — tens of
	// MiB regardless of the database); below the threshold the bound
	// would fail for any implementation, streaming or not.
	const rssGateMinPostingMB = 128
	rawMB := float64(rep.RawPostingBytes) / (1 << 20)
	switch {
	case rep.BuildPeakRSSMB <= 0:
		fmt.Println("skip  build_peak_rss_mb unavailable (no /proc on the measuring host)")
	case rawMB < rssGateMinPostingMB:
		fmt.Printf("skip  build_peak_rss_mb %.1f: posting volume %.1f MiB under the %d MiB gate threshold\n",
			rep.BuildPeakRSSMB, rawMB, rssGateMinPostingMB)
	default:
		assert(rep.BuildPeakRSSMB < 0.5*rawMB,
			"build_peak_rss_mb %.1f < 50%% of raw posting volume (%.1f MiB)", rep.BuildPeakRSSMB, rawMB)
	}
	if fail {
		fmt.Println("\nFAIL: out-of-core invariants violated.")
		os.Exit(1)
	}
	fmt.Println("\nPASS")
}

func read(path string) harness.BenchReport {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var rep harness.BenchReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		log.Fatalf("parsing %s: %v", path, err)
	}
	return rep
}
