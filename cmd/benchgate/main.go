// Command benchgate compares a freshly measured pisbench report against
// the committed BENCH_pis.json baseline and fails on performance
// regression, giving CI teeth: a change that slows the query pipeline
// or re-inflates its allocation profile fails the build instead of
// landing silently.
//
// Five metrics are gated, each with a relative tolerance (default 20%,
// wide enough to absorb shared-runner noise):
//
//   - queries_per_sec   must not drop below baseline × (1 - tolerance)
//   - avg_filter_ms     must not rise above baseline × (1 + tolerance)
//   - avg_verify_ms     likewise — a filter that passes junk candidates
//     shows up here even when the filter itself got faster
//   - verify_time_share likewise, catching a drift in the filter/verify
//     balance that the absolute numbers absorb on a fast runner
//   - avg_allocs_per_query (machine-independent) likewise
//   - avg_prescreen_rejects must not drop below baseline × (1 - tolerance):
//     a fingerprint regression that stops refuting candidates pushes them
//     all back into branch-and-bound
//   - verify_cache_hit_rate likewise, measured on the warm pass — a broken
//     cache key or over-eager invalidation shows up here first
//
// The two tier metrics skip automatically against a pre-tier baseline
// (value 0 or absent), so the gate stays usable across the transition.
//
// Improvements never fail the gate; benchgate prints a hint to refresh
// the baseline when the current report is clearly better. To accept an
// intentional change, regenerate the report with pisbench and commit it:
//
//	go run ./cmd/pisbench -figure timing -n 600 -queries 60 -json BENCH_pis.json
//
// Usage:
//
//	benchgate -baseline BENCH_pis.json -current /tmp/BENCH_new.json [-tolerance 0.2]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"pis/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	var (
		baselinePath = flag.String("baseline", "BENCH_pis.json", "committed baseline report")
		currentPath  = flag.String("current", "", "freshly measured report (required)")
		tolerance    = flag.Float64("tolerance", 0.2, "relative regression tolerance (0.2 = 20%)")
	)
	flag.Parse()
	if *currentPath == "" {
		log.Fatal("-current is required")
	}
	if *tolerance < 0 {
		log.Fatal("-tolerance must be >= 0")
	}
	baseline := read(*baselinePath)
	current := read(*currentPath)

	type gate struct {
		name           string
		base, cur      float64
		higherIsBetter bool
	}
	gates := []gate{
		{"queries_per_sec", baseline.QueriesPerSec, current.QueriesPerSec, true},
		{"avg_filter_ms", baseline.AvgFilterMS, current.AvgFilterMS, false},
		{"avg_verify_ms", baseline.AvgVerifyMS, current.AvgVerifyMS, false},
		{"verify_time_share", baseline.VerifyTimeShare, current.VerifyTimeShare, false},
		{"avg_allocs_per_query", baseline.AvgAllocsPerQuery, current.AvgAllocsPerQuery, false},
		{"avg_prescreen_rejects", baseline.AvgPrescreenRejects, current.AvgPrescreenRejects, true},
		{"verify_cache_hit_rate", baseline.VerifyCacheHitRate, current.VerifyCacheHitRate, true},
	}

	failed, improved := false, false
	fmt.Printf("%-22s  %12s  %12s  %8s  %s\n", "metric", "baseline", "current", "delta", "verdict")
	for _, g := range gates {
		if g.base <= 0 {
			fmt.Printf("%-22s  %12.3f  %12.3f  %8s  skip (no baseline)\n", g.name, g.base, g.cur, "-")
			continue
		}
		delta := (g.cur - g.base) / g.base
		regressed := delta < -*tolerance
		better := delta > 0
		if !g.higherIsBetter {
			regressed = delta > *tolerance
			better = delta < 0
		}
		verdict := "ok"
		switch {
		case regressed:
			verdict = "REGRESSION"
			failed = true
		case better:
			verdict = "improved"
			improved = true
		}
		fmt.Printf("%-22s  %12.3f  %12.3f  %+7.1f%%  %s\n", g.name, g.base, g.cur, delta*100, verdict)
	}
	switch {
	case failed:
		fmt.Printf("\nFAIL: regression beyond the %.0f%% tolerance.\n", *tolerance*100)
		fmt.Println("If intentional, refresh the baseline: go run ./cmd/pisbench -figure timing -n 600 -queries 60 -json BENCH_pis.json and commit it.")
		os.Exit(1)
	case improved:
		fmt.Println("\nPASS — current report beats the baseline; consider committing it as the new baseline.")
	default:
		fmt.Println("\nPASS")
	}
}

func read(path string) harness.BenchReport {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var rep harness.BenchReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		log.Fatalf("parsing %s: %v", path, err)
	}
	return rep
}
