// Command pisserved serves a sharded PIS graph database over the HTTP
// JSON API of the server package.
//
// Usage:
//
//	pisserved -db screen.db -shards 4                 # in-memory, serve a database file
//	pisserved -gen 2000 -shards 4                     # in-memory, synthetic database
//	pisserved -db screen.db -shards 4 -data-dir ./pis # durable: bootstrap the store
//	pisserved -data-dir ./pis                         # restart: recover, no -db needed
//
// Endpoints: POST /search, POST /knn, POST /batch, GET /graphs/{id},
// POST /graphs (insert), DELETE /graphs/{id}, POST /compact,
// POST /checkpoint, GET /stats, GET /healthz, GET /metrics
// (Prometheus text format), GET /debug/queries (sampled query ring).
// Append ?trace=1 to /search for an inline per-stage span tree.
//
// With -debug-addr a second admin listener serves GET /metrics and the
// net/http/pprof profiling handlers under /debug/pprof/. Profiling is
// only ever exposed on that listener, never on the query port, so the
// admin surface can be firewalled separately. -slow-query sets a latency
// threshold above which queries are logged with structured fields.
//
// With -data-dir the database is durable: every accepted insert and
// delete is written to a per-shard write-ahead log and fsync'd before
// the response, compactions and checkpoints write atomic snapshots, and
// a restart — graceful or not — recovers the exact acknowledged state
// from the newest snapshots plus the log tails, with no re-mining.
// Without -data-dir mutations are in-memory only and vanish on exit.
//
// A -data-dir pointing at a legacy -index-dir layout (per-shard .pisidx
// files plus a fingerprint manifest) is migrated in place: the old
// indexes are loaded once, a snapshot-based store is written next to
// them, and later restarts use the store alone. The legacy files can
// then be deleted.
//
// The process shuts down gracefully on SIGINT or SIGTERM, draining
// in-flight requests. See README.md for request bodies and curl
// examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"pis"
	"pis/gen"
	"pis/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pisserved: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		dbPath   = flag.String("db", "", "database file (transaction format)")
		genN     = flag.Int("gen", 0, "instead of -db, generate this many synthetic molecules")
		seed     = flag.Int64("seed", 1, "seed for -gen")
		shards   = flag.Int("shards", 1, "number of contiguous index shards (ignored when -data-dir already holds a store)")
		maxFrag  = flag.Int("maxfrag", 5, "maximum indexed fragment size (edges)")
		cache    = flag.Int("cache", 4096, "result cache capacity in entries (0 disables)")
		inflight = flag.Int("inflight", 0, "max concurrently executing query requests (0 = unlimited)")
		maxQueue = flag.Int("max-queue", 0, "max query requests waiting for an -inflight slot before shedding with 429 (0 = 4x inflight, negative = no queue)")
		quWait   = flag.Duration("queue-wait", 0, "shed a queued query request with 429 after waiting this long for a slot (0 = wait as long as the client)")
		qTimeout = flag.Duration("query-timeout", 0, "per-query execution deadline, e.g. 5s; exceeded queries return 504 (0 disables)")
		shutdown = flag.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown drain window for in-flight requests")
		dataDir  = flag.String("data-dir", "", "durable store directory: recovered when present (no -db needed), created from -db/-gen otherwise; legacy -index-dir layouts migrate in place")
		compact  = flag.Float64("compact-fraction", 0.25, "auto-compact a shard when its insert delta exceeds this fraction of its indexed size (negative disables)")

		debugAddr = flag.String("debug-addr", "", "admin listen address serving /metrics and /debug/pprof/ (profiling is never exposed on -addr)")
		slowQuery = flag.Duration("slow-query", 0, "log queries slower than this duration, e.g. 250ms (0 disables)")
		qlogSize  = flag.Int("query-log", 0, "GET /debug/queries ring capacity (0 = default 256)")

		clusterAddr  = flag.String("cluster-addr", "", "shard-RPC listen address for cluster mode, e.g. 10.0.0.1:7070; must appear verbatim in -cluster-peers")
		clusterPeers = flag.String("cluster-peers", "", "comma-separated shard-RPC addresses of every cluster node (including this one); enables cluster mode")
		replication  = flag.Int("replication", 1, "replicas per shard in cluster mode (clamped to the peer count)")

		plannerOff       = flag.Bool("planner-off", false, "disable the cost-based query planner (exhaustive fragment expansion)")
		plannerBudget    = flag.Float64("planner-budget", 0, "minimum candidate eliminations for a fragment range query to stay worth running (0 = default 1, negative = expand exhaustively)")
		plannerCrossover = flag.Int("planner-crossover", 0, "skip remaining range queries once this few candidates survive (0 = default 16, -1 = never stop early)")
	)
	flag.Parse()
	if *dbPath != "" && *genN != 0 {
		log.Fatal("at most one of -db or -gen may be given")
	}
	// 0 and -1 are sentinels (default and disabled); any other negative
	// value is a misunderstanding of the knob — its magnitude would be
	// silently ignored, so refuse it instead.
	if *plannerCrossover < -1 {
		log.Fatalf("-planner-crossover %d is meaningless: use a positive candidate count, 0 for the default (16), or -1 to never stop early", *plannerCrossover)
	}
	clusterMode := *clusterPeers != ""
	if clusterMode && *clusterAddr == "" {
		log.Fatal("-cluster-peers requires -cluster-addr (this node's own shard-RPC address)")
	}
	if !clusterMode && *clusterAddr != "" {
		log.Fatal("-cluster-addr requires -cluster-peers")
	}
	haveSource := *dbPath != "" || *genN != 0
	canRecover := *dataDir != "" && pis.StoreExists(*dataDir)
	// Cluster mode can also recover from its own per-shard stores or
	// fetch replicas from peers; StartClusterNode reports cleanly when a
	// shard truly has no source anywhere.
	if !haveSource && !canRecover && !clusterMode {
		log.Fatal("one of -db or -gen is required (or -data-dir must hold an existing store)")
	}

	opts := pis.Options{
		MaxFragmentEdges: *maxFrag,
		QueryTimeout:     *qTimeout,
		CompactFraction:  *compact,
		PlannerOff:       *plannerOff,
		PlannerBudget:    *plannerBudget,
		PlannerCrossover: *plannerCrossover,
	}
	if clusterMode {
		runCluster(*clusterAddr, *clusterPeers, *shards, *replication, *dataDir, *dbPath, *genN, *seed, opts,
			serveConfig{addr: *addr, cache: *cache, inflight: *inflight, maxQueue: *maxQueue,
				quWait: *quWait, shutdown: *shutdown, slowQuery: *slowQuery, qlogSize: *qlogSize,
				debugAddr: *debugAddr})
		return
	}

	var db *pis.Sharded
	var err error
	switch {
	case canRecover:
		if haveSource {
			log.Printf("data dir %s already holds a store; ignoring -db/-gen", *dataDir)
		}
		start := time.Now()
		db, err = pis.OpenSharded(*dataDir, opts)
		if err != nil {
			log.Fatal(err)
		}
		d := db.Durability()
		log.Printf("recovered %d graphs in %d shards from %s in %v (replayed %d WAL records, dropped %d torn bytes)",
			db.Len(), db.NumShards(), *dataDir, time.Since(start), d.ReplayedRecords, d.RecoveryDroppedBytes)
	default:
		var graphs []*pis.Graph
		if *dbPath != "" {
			f, err := os.Open(*dbPath)
			if err != nil {
				log.Fatal(err)
			}
			graphs, err = pis.ReadDatabase(f)
			f.Close()
			if err != nil {
				log.Fatalf("reading database: %v", err)
			}
		} else {
			graphs = gen.Molecules(*genN, gen.Config{Seed: *seed})
		}
		log.Printf("database: %d graphs", len(graphs))
		db, err = buildSharded(graphs, *shards, opts, *dataDir)
		if err != nil {
			log.Fatal(err)
		}
	}
	defer db.Close()
	st := db.Stats()
	log.Printf("index: %d shards, %d features, %d fragments", db.NumShards(), st.Features, st.Fragments)

	serve(db, serveConfig{addr: *addr, cache: *cache, inflight: *inflight, maxQueue: *maxQueue,
		quWait: *quWait, shutdown: *shutdown, slowQuery: *slowQuery, qlogSize: *qlogSize,
		debugAddr: *debugAddr})
}

// serveConfig carries the HTTP-serving flags shared by single-process
// and cluster mode.
type serveConfig struct {
	addr      string
	cache     int
	inflight  int
	maxQueue  int
	quWait    time.Duration
	shutdown  time.Duration
	slowQuery time.Duration
	qlogSize  int
	debugAddr string
}

// serve fronts the backend with the HTTP server until SIGINT/SIGTERM.
func serve(backend server.Backend, sc serveConfig) {
	srv, err := server.New(server.Config{
		Backend:            backend,
		CacheSize:          sc.cache,
		MaxInFlight:        sc.inflight,
		MaxQueue:           sc.maxQueue,
		QueueWait:          sc.quWait,
		ShutdownTimeout:    sc.shutdown,
		SlowQueryThreshold: sc.slowQuery,
		QueryLogSize:       sc.qlogSize,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if sc.debugAddr != "" {
		go runDebugServer(ctx, sc.debugAddr)
	}
	log.Printf("listening on %s", sc.addr)
	if err := srv.Run(ctx, sc.addr); err != nil {
		log.Fatal(err)
	}
	log.Print("shut down cleanly")
}

// runCluster boots this process as one node of a replicated cluster:
// a shard-RPC server for the shards the placement map assigns it, plus
// a coordinator that routes this node's HTTP traffic to the whole
// cluster. Every node must be started with the same -cluster-peers,
// -shards, and -replication values (and the same -db/-gen source when
// bootstrapping); each node needs its own -data-dir.
func runCluster(self, peerList string, shards, replication int, dataDir, dbPath string, genN int, seed int64, opts pis.Options, sc serveConfig) {
	var peers []string
	for _, p := range strings.Split(peerList, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	var graphs []*pis.Graph
	switch {
	case dbPath != "":
		f, err := os.Open(dbPath)
		if err != nil {
			log.Fatal(err)
		}
		var rerr error
		graphs, rerr = pis.ReadDatabase(f)
		f.Close()
		if rerr != nil {
			log.Fatalf("reading database: %v", rerr)
		}
	case genN != 0:
		graphs = gen.Molecules(genN, gen.Config{Seed: seed})
	}
	start := time.Now()
	cn, err := pis.StartClusterNode(pis.ClusterOptions{
		Self:        self,
		Peers:       peers,
		Shards:      shards,
		Replication: replication,
		DataDir:     dataDir,
		Graphs:      graphs,
		Options:     opts,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cn.Close()
	ov := cn.Overview()
	log.Printf("cluster node %s up in %v: %d peers (%d up), %d shards (%d covered), replication %d",
		self, time.Since(start), ov.Peers, ov.PeersUp, ov.Shards, ov.CoveredShards, ov.Replication)
	serve(cn, sc)
}

// runDebugServer serves the admin surface — Prometheus metrics plus the
// pprof profiling handlers — on its own listener. The handlers are
// mounted on a private mux (not http.DefaultServeMux), and the query
// listener never registers pprof, so exposing -addr publicly cannot leak
// profiling data.
func runDebugServer(ctx context.Context, addr string) {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", server.MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	hs := &http.Server{Addr: addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("debug listener on %s (/metrics, /debug/pprof/)", addr)
	select {
	case err := <-errc:
		log.Printf("debug listener: %v", err)
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		hs.Shutdown(sctx)
	}
}

// buildSharded constructs the database from graphs. With a data dir it
// becomes durable: a legacy index layout is migrated via load+persist
// when its fingerprint matches, otherwise the index is built fresh and
// persisted.
func buildSharded(graphs []*pis.Graph, nShards int, opts pis.Options, dataDir string) (*pis.Sharded, error) {
	if nShards > len(graphs) {
		nShards = len(graphs)
	}
	if dataDir != "" {
		if db, ok := migrateLegacy(graphs, nShards, opts, dataDir); ok {
			return db, nil
		}
	}
	start := time.Now()
	db, err := pis.NewSharded(graphs, nShards, opts)
	if err != nil {
		return nil, err
	}
	log.Printf("built %d shard indexes in %v", db.NumShards(), time.Since(start))
	if dataDir != "" {
		if err := db.Persist(dataDir); err != nil {
			return nil, err
		}
		log.Printf("persisted database store to %s", dataDir)
	}
	return db, nil
}

// Legacy -index-dir layout: per-shard gob index files plus a database
// fingerprint manifest, written by earlier pisserved versions.
func legacyShardPath(dir string, i, n int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.pisidx", i, n))
}

func legacyManifestPath(dir string) string { return filepath.Join(dir, "manifest") }

// legacyFingerprint hashes the full database contents the way the old
// -index-dir manifest did.
func legacyFingerprint(graphs []*pis.Graph) (string, error) {
	h := fnv.New64a()
	if err := pis.WriteDatabase(h, graphs); err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// migrateLegacy loads a legacy index layout from dataDir when one is
// present and matches graphs, then persists it as a snapshot-based store
// in the same directory — a one-time checkpoint instead of a re-mine.
// ok is false when there is nothing (valid) to migrate.
func migrateLegacy(graphs []*pis.Graph, nShards int, opts pis.Options, dataDir string) (*pis.Sharded, bool) {
	saved, err := os.ReadFile(legacyManifestPath(dataDir))
	if err != nil {
		return nil, false
	}
	fp, err := legacyFingerprint(graphs)
	if err != nil || string(saved) != fp {
		log.Printf("legacy index dir %s was built for a different database; rebuilding", dataDir)
		return nil, false
	}
	files := make([]*os.File, 0, nShards)
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	readers := make([]io.Reader, 0, nShards)
	for i := 0; i < nShards; i++ {
		f, err := os.Open(legacyShardPath(dataDir, i, nShards))
		if err != nil {
			log.Printf("legacy index dir %s is incomplete for %d shards; rebuilding", dataDir, nShards)
			return nil, false
		}
		files = append(files, f)
		readers = append(readers, f)
	}
	db, err := pis.LoadShardedIndex(graphs, readers, opts)
	if err != nil {
		log.Printf("legacy index load failed (%v); rebuilding", err)
		return nil, false
	}
	if err := db.Persist(dataDir); err != nil {
		// Never degrade silently to in-memory when the operator asked for
		// -data-dir: acknowledged mutations would vanish on restart.
		log.Fatalf("migrating legacy index dir %s failed: %v", dataDir, err)
	}
	log.Printf("migrated legacy index dir %s to a durable store (legacy .pisidx files can be deleted)", dataDir)
	return db, true
}
