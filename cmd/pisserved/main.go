// Command pisserved serves a sharded PIS graph database over the HTTP
// JSON API of the server package.
//
// Usage:
//
//	pisserved -db screen.db -shards 4                 # serve a database file
//	pisserved -gen 2000 -shards 4                     # serve a synthetic database
//	pisserved -db screen.db -index-dir ./idx          # persist per-shard indexes;
//	                                                  # restarts skip mining
//
// Endpoints: POST /search, POST /knn, POST /batch, GET /graphs/{id},
// POST /graphs (insert), DELETE /graphs/{id}, POST /compact, GET /stats,
// GET /healthz. Mutations are in-memory only: a saved -index-dir always
// reflects the database file it was built from, so a restart serves the
// original file and replayed mutations are the client's responsibility.
// The process shuts down gracefully on SIGINT or SIGTERM, draining
// in-flight requests. See README.md for request bodies and curl
// examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"pis"
	"pis/gen"
	"pis/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pisserved: ")
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		dbPath   = flag.String("db", "", "database file (transaction format)")
		genN     = flag.Int("gen", 0, "instead of -db, generate this many synthetic molecules")
		seed     = flag.Int64("seed", 1, "seed for -gen")
		shards   = flag.Int("shards", 1, "number of contiguous index shards")
		maxFrag  = flag.Int("maxfrag", 5, "maximum indexed fragment size (edges)")
		cache    = flag.Int("cache", 4096, "result cache capacity in entries (0 disables)")
		inflight = flag.Int("inflight", 0, "max concurrently executing query requests (0 = unlimited)")
		indexDir = flag.String("index-dir", "", "directory for per-shard index files; loaded when present, written after a fresh build")
		compact  = flag.Float64("compact-fraction", 0.25, "auto-compact a shard when its insert delta exceeds this fraction of its indexed size (negative disables)")
	)
	flag.Parse()
	if (*dbPath == "") == (*genN == 0) {
		log.Fatal("exactly one of -db or -gen is required")
	}

	var graphs []*pis.Graph
	if *dbPath != "" {
		f, err := os.Open(*dbPath)
		if err != nil {
			log.Fatal(err)
		}
		graphs, err = pis.ReadDatabase(f)
		f.Close()
		if err != nil {
			log.Fatalf("reading database: %v", err)
		}
	} else {
		graphs = gen.Molecules(*genN, gen.Config{Seed: *seed})
	}
	log.Printf("database: %d graphs", len(graphs))

	opts := pis.Options{MaxFragmentEdges: *maxFrag, CompactFraction: *compact}
	db, err := openSharded(graphs, *shards, opts, *indexDir)
	if err != nil {
		log.Fatal(err)
	}
	st := db.Stats()
	log.Printf("index: %d shards, %d features, %d fragments", db.NumShards(), st.Features, st.Fragments)

	srv, err := server.New(server.Config{
		Backend:     db,
		CacheSize:   *cache,
		MaxInFlight: *inflight,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("listening on %s", *addr)
	if err := srv.Run(ctx, *addr); err != nil {
		log.Fatal(err)
	}
	log.Print("shut down cleanly")
}

// shardIndexPath names shard i's index file for an n-shard layout; the
// shard count is baked into the name so a -shards change forces a rebuild
// instead of a mismatched load.
func shardIndexPath(dir string, i, n int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.pisidx", i, n))
}

func manifestPath(dir string) string { return filepath.Join(dir, "manifest") }

// dbFingerprint hashes the full database contents. Saved indexes are only
// valid for the exact graphs they were built over; a matching graph count
// alone is not enough (same-size database with different contents would
// load cleanly and then silently drop true answers).
func dbFingerprint(graphs []*pis.Graph) (string, error) {
	h := fnv.New64a()
	if err := pis.WriteDatabase(h, graphs); err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// openSharded loads the per-shard indexes from dir when they are present
// and the manifest fingerprint matches the database, otherwise builds
// from scratch (and saves to dir when given).
func openSharded(graphs []*pis.Graph, nShards int, opts pis.Options, dir string) (*pis.Sharded, error) {
	if nShards > len(graphs) {
		nShards = len(graphs)
	}
	fp, err := dbFingerprint(graphs)
	if err != nil {
		return nil, err
	}
	if dir != "" {
		saved, err := os.ReadFile(manifestPath(dir))
		switch {
		case err == nil && string(saved) != fp:
			log.Printf("index dir %s was built for a different database (fingerprint %s, want %s); rebuilding",
				dir, saved, fp)
		case err == nil:
			if db, err := loadFromDir(graphs, nShards, opts, dir); err == nil {
				log.Printf("loaded %d shard indexes from %s", nShards, dir)
				return db, nil
			} else if !os.IsNotExist(err) {
				return nil, err
			}
		case !os.IsNotExist(err):
			return nil, err
		}
	}
	start := time.Now()
	db, err := pis.NewSharded(graphs, nShards, opts)
	if err != nil {
		return nil, err
	}
	log.Printf("built %d shard indexes in %v", db.NumShards(), time.Since(start))
	if dir != "" {
		if err := saveToDir(db, dir, fp); err != nil {
			return nil, err
		}
		log.Printf("saved shard indexes to %s", dir)
	}
	return db, nil
}

func loadFromDir(graphs []*pis.Graph, nShards int, opts pis.Options, dir string) (*pis.Sharded, error) {
	files := make([]*os.File, 0, nShards)
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	readers := make([]io.Reader, 0, nShards)
	for i := 0; i < nShards; i++ {
		f, err := os.Open(shardIndexPath(dir, i, nShards))
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		readers = append(readers, f)
	}
	return pis.LoadShardedIndex(graphs, readers, opts)
}

func saveToDir(db *pis.Sharded, dir, fingerprint string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n := db.NumShards()
	for i := 0; i < n; i++ {
		f, err := os.Create(shardIndexPath(dir, i, n))
		if err != nil {
			return err
		}
		if err := db.SaveShardIndex(i, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	// The manifest is written last: a crash mid-save leaves no fingerprint
	// and the next start rebuilds instead of loading a partial set.
	return os.WriteFile(manifestPath(dir), []byte(fingerprint), 0o644)
}
